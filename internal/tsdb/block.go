package tsdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	mathbits "math/bits"
	"sort"

	"dcpi/internal/atomicio"
	"dcpi/internal/sim"
)

// BlockMagic identifies a tsdb block file.
var BlockMagic = [8]byte{'D', 'C', 'P', 'I', 'T', 'S', 'B', 'K'}

// BlockVersion is the current block-format version.
const BlockVersion = 1

// A block is the compacted form of a run of one machine's raw segments:
// column-oriented per-series storage with delta/varint encoding. Epoch
// metadata (wall, period) is stored once per epoch instead of once per
// point, labels are interned in a sorted string table, and each series'
// epochs/samples/insts columns delta-encode against their predecessor —
// together roughly 5-7 bytes per point against ~36 for the raw form.
//
// A block remembers the raw segment sequence range it consumed
// ([firstSeq, lastSeq]); Open uses it to reclaim input files left behind
// by a crash between the block's commit rename and the input cleanup.
//
// downsample == 0 means raw fidelity: every (epoch, point) survives and
// queries decode the identical Points the raw segments held. downsample
// == N (2 ≤ N ≤ maxDownsample) means each series keeps one aggregate per
// N-epoch bucket (sums of samples/insts/wall, per-epoch min/max,
// cycle-weighted mean period) and the per-epoch metadata table is
// replaced by per-bucket sums plus a coverage bitmap recording exactly
// which of the bucket's epochs were ingested.
type block struct {
	machine    string
	firstSeq   uint64
	lastSeq    uint64
	minEpoch   uint64
	maxEpoch   uint64
	downsample uint64
	metas      []epochMeta  // raw blocks: ascending, one per stored epoch
	buckets    []bucketMeta // downsampled blocks: ascending bucket starts
	series     []bseries    // ascending by (workload, image, proc, event)
	points     int
}

// epochMeta is one epoch's shared metadata in a raw block.
type epochMeta struct {
	epoch  uint64
	wall   int64
	period float64
}

// bucketMeta is one N-epoch bucket's shared metadata in a downsampled
// block: the bucket's first epoch, exactly which of its epochs were
// ingested, and their wall-cycle sum. cover is what keeps HasEpoch exact
// after downsampling — a partial bucket (short series, gaps from
// quarantine or a scrape outage) must not claim epochs it never held —
// and is why the downsample factor is capped at 64 (maxDownsample).
type bucketMeta struct {
	epoch uint64
	cover uint64 // bitmap: bit i set iff epoch+i was ingested
	wall  int64
}

// maxDownsample bounds the downsampling factor so a bucket's epoch
// coverage fits one 64-bit bitmap.
const maxDownsample = 64

// bseries is one decoded series: parallel columns, epochs non-decreasing
// (duplicates allowed in raw blocks — a re-scrape race can legitimately
// store the same epoch twice; see Select's ordering contract). walls and
// periods are materialized from the epoch/bucket metadata at decode time
// so query scans touch no side tables. mins/maxs are nil in raw blocks
// (Min == Max == Samples there).
type bseries struct {
	labels  Labels
	epochs  []uint64
	samples []uint64
	insts   []uint64
	walls   []int64
	periods []float64
	mins    []uint64
	maxs    []uint64
}

// point materializes column j as a Point.
func (bs *bseries) point(j int) Point {
	p := Point{
		Labels:  bs.labels,
		Epoch:   bs.epochs[j],
		Samples: bs.samples[j],
		Insts:   bs.insts[j],
		Wall:    bs.walls[j],
		Period:  bs.periods[j],
	}
	if bs.mins != nil {
		p.Min, p.Max = bs.mins[j], bs.maxs[j]
	} else {
		p.Min, p.Max = p.Samples, p.Samples
	}
	return p
}

// searchEpoch returns the first column index with epoch >= e.
func (bs *bseries) searchEpoch(e uint64) int {
	return sort.Search(len(bs.epochs), func(i int) bool { return bs.epochs[i] >= e })
}

// hasEpoch reports whether the block ingested the given epoch — exact
// even for downsampled blocks, whose buckets record per-epoch coverage
// in a bitmap.
func (b *block) hasEpoch(e uint64) bool {
	if e < b.minEpoch || e > b.maxEpoch {
		return false
	}
	if b.downsample == 0 {
		i := sort.Search(len(b.metas), func(i int) bool { return b.metas[i].epoch >= e })
		return i < len(b.metas) && b.metas[i].epoch == e
	}
	start := bucketStart(e, b.downsample)
	i := sort.Search(len(b.buckets), func(i int) bool { return b.buckets[i].epoch >= start })
	return i < len(b.buckets) && b.buckets[i].epoch == start &&
		b.buckets[i].cover&(1<<(e-start)) != 0
}

// bucketStart maps an epoch (>= 1) to its N-epoch bucket's first epoch.
func bucketStart(e, n uint64) uint64 { return (e-1)/n*n + 1 }

// bucketBounds returns the exact [min, max] ingested epochs of an
// ascending, non-empty bucket list: the lowest covered epoch of the
// first bucket and the highest covered epoch of the last.
func bucketBounds(bk []bucketMeta) (min, max uint64) {
	first, last := &bk[0], &bk[len(bk)-1]
	min = first.epoch + uint64(mathbits.TrailingZeros64(first.cover))
	max = last.epoch + uint64(63-mathbits.LeadingZeros64(last.cover))
	return min, max
}

func seriesLess(a, b *Labels) bool {
	if a.Workload != b.Workload {
		return a.Workload < b.Workload
	}
	if a.Image != b.Image {
		return a.Image < b.Image
	}
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	return a.Event < b.Event
}

// buildBlock merges one machine's raw sources (ascending fileSeq) into an
// in-memory block. Epoch metadata is stored once per epoch: when a
// re-scrape race stored the same epoch twice, the duplicates are
// guaranteed to carry identical wall/period — Append rejects conflicting
// re-appends and Compact quarantines conflicting files before calling
// this — so taking the lowest-sequence segment's metadata is lossless.
// Points with identical labels and epoch all survive, in
// segment-sequence order.
func buildBlock(machine string, srcs []*source) *block {
	b := &block{
		machine:  machine,
		firstSeq: srcs[0].fileSeq,
		lastSeq:  srcs[len(srcs)-1].fileSeq,
	}
	metaByEpoch := map[uint64]epochMeta{}
	type col struct {
		epochs, samples, insts []uint64
	}
	byLabel := map[Labels]*col{}
	var order []Labels
	for _, s := range srcs {
		if _, ok := metaByEpoch[s.seg.epoch]; !ok {
			metaByEpoch[s.seg.epoch] = epochMeta{s.seg.epoch, s.seg.wall, s.seg.period}
		}
		for i := range s.seg.points {
			p := &s.seg.points[i]
			c := byLabel[p.Labels]
			if c == nil {
				c = &col{}
				byLabel[p.Labels] = c
				order = append(order, p.Labels)
			}
			c.epochs = append(c.epochs, p.Epoch)
			c.samples = append(c.samples, p.Samples)
			c.insts = append(c.insts, p.Insts)
		}
	}
	b.metas = make([]epochMeta, 0, len(metaByEpoch))
	for _, m := range metaByEpoch {
		b.metas = append(b.metas, m)
	}
	sort.Slice(b.metas, func(i, j int) bool { return b.metas[i].epoch < b.metas[j].epoch })
	b.minEpoch = b.metas[0].epoch
	b.maxEpoch = b.metas[len(b.metas)-1].epoch
	sort.Slice(order, func(i, j int) bool { return seriesLess(&order[i], &order[j]) })
	b.series = make([]bseries, 0, len(order))
	for _, lab := range order {
		c := byLabel[lab]
		// Sort columns by epoch, keeping ingestion order for duplicates.
		idx := make([]int, len(c.epochs))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(i, j int) bool { return c.epochs[idx[i]] < c.epochs[idx[j]] })
		bs := bseries{
			labels:  lab,
			epochs:  make([]uint64, len(idx)),
			samples: make([]uint64, len(idx)),
			insts:   make([]uint64, len(idx)),
			walls:   make([]int64, len(idx)),
			periods: make([]float64, len(idx)),
		}
		for out, in := range idx {
			e := c.epochs[in]
			m := metaByEpoch[e]
			bs.epochs[out] = e
			bs.samples[out] = c.samples[in]
			bs.insts[out] = c.insts[in]
			bs.walls[out] = m.wall
			bs.periods[out] = m.period
		}
		b.series = append(b.series, bs)
		b.points += len(idx)
	}
	return b
}

// downsampleBlock rewrites a raw block as per-N-epoch aggregates.
func downsampleBlock(b *block, n uint64) *block {
	d := &block{
		machine:    b.machine,
		firstSeq:   b.firstSeq,
		lastSeq:    b.lastSeq,
		downsample: n,
	}
	bucketByStart := map[uint64]*bucketMeta{}
	for _, m := range b.metas {
		start := bucketStart(m.epoch, n)
		bm := bucketByStart[start]
		if bm == nil {
			bm = &bucketMeta{epoch: start}
			bucketByStart[start] = bm
			d.buckets = append(d.buckets, bucketMeta{})
		}
		bm.cover |= 1 << (m.epoch - start)
		bm.wall += m.wall
	}
	starts := make([]uint64, 0, len(bucketByStart))
	for s := range bucketByStart {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for i, s := range starts {
		d.buckets[i] = *bucketByStart[s]
	}
	// Epoch bounds stay exact: a partial last bucket must not claim the
	// uncovered tail (nor a partial first bucket an uncovered head).
	d.minEpoch, d.maxEpoch = bucketBounds(d.buckets)
	for si := range b.series {
		src := &b.series[si]
		ds := bseries{labels: src.labels}
		for j := 0; j < len(src.epochs); {
			start := bucketStart(src.epochs[j], n)
			var samples, insts, min, max uint64
			var cycles float64
			first := j
			for ; j < len(src.epochs) && bucketStart(src.epochs[j], n) == start; j++ {
				s := src.samples[j]
				samples += s
				insts += src.insts[j]
				cycles += float64(s) * src.periods[j]
				if j == first || s < min {
					min = s
				}
				if s > max {
					max = s
				}
			}
			period := src.periods[first]
			if samples > 0 {
				period = cycles / float64(samples)
			}
			ds.epochs = append(ds.epochs, start)
			ds.samples = append(ds.samples, samples)
			ds.insts = append(ds.insts, insts)
			ds.walls = append(ds.walls, bucketByStart[start].wall)
			ds.periods = append(ds.periods, period)
			ds.mins = append(ds.mins, min)
			ds.maxs = append(ds.maxs, max)
		}
		d.series = append(d.series, ds)
		d.points += len(ds.epochs)
	}
	return d
}

// EncodeBlock writes the framed, CRC-stamped encoding of a block.
func EncodeBlock(w io.Writer, b *block) error {
	var payload bytes.Buffer
	pw := bufio.NewWriter(&payload)
	writeString := func(s string) error {
		if err := atomicio.WriteUvarint(pw, uint64(len(s))); err != nil {
			return err
		}
		_, err := pw.WriteString(s)
		return err
	}
	wu := func(vs ...uint64) error {
		for _, v := range vs {
			if err := atomicio.WriteUvarint(pw, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeString(b.machine); err != nil {
		return err
	}
	if err := wu(b.firstSeq, b.lastSeq, b.minEpoch, b.maxEpoch, b.downsample); err != nil {
		return err
	}
	if b.downsample == 0 {
		if err := wu(uint64(len(b.metas))); err != nil {
			return err
		}
		var prevEpoch uint64
		var prevWall int64
		var prevBits uint64
		for _, m := range b.metas {
			bits := math.Float64bits(m.period)
			if err := wu(m.epoch - prevEpoch); err != nil {
				return err
			}
			if err := atomicio.WriteVarint(pw, m.wall-prevWall); err != nil {
				return err
			}
			if err := wu(bits ^ prevBits); err != nil {
				return err
			}
			prevEpoch, prevWall, prevBits = m.epoch, m.wall, bits
		}
	} else {
		if err := wu(uint64(len(b.buckets))); err != nil {
			return err
		}
		var prevEpoch uint64
		var prevWall int64
		for _, bm := range b.buckets {
			if err := wu(bm.epoch-prevEpoch, bm.cover); err != nil {
				return err
			}
			if err := atomicio.WriteVarint(pw, bm.wall-prevWall); err != nil {
				return err
			}
			prevEpoch, prevWall = bm.epoch, bm.wall
		}
	}
	strs, strIdx := blockStringTable(b)
	if err := wu(uint64(len(strs))); err != nil {
		return err
	}
	for _, s := range strs {
		if err := writeString(s); err != nil {
			return err
		}
	}
	if err := wu(uint64(len(b.series))); err != nil {
		return err
	}
	for si := range b.series {
		bs := &b.series[si]
		if err := wu(strIdx[bs.labels.Workload], strIdx[bs.labels.Image], strIdx[bs.labels.Proc]); err != nil {
			return err
		}
		if err := pw.WriteByte(byte(bs.labels.Event)); err != nil {
			return err
		}
		if err := wu(uint64(len(bs.epochs))); err != nil {
			return err
		}
		var prev uint64
		for _, e := range bs.epochs {
			if err := wu(e - prev); err != nil {
				return err
			}
			prev = e
		}
		for _, col := range [][]uint64{bs.samples, bs.insts} {
			prev = 0
			for _, v := range col {
				// Wrap-around delta: exact mod 2^64, small varints for
				// slowly-varying counters.
				if err := atomicio.WriteVarint(pw, int64(v-prev)); err != nil {
					return err
				}
				prev = v
			}
		}
		if b.downsample > 0 {
			for _, v := range bs.mins {
				if err := wu(v); err != nil {
					return err
				}
			}
			for j, v := range bs.maxs {
				if err := wu(v - bs.mins[j]); err != nil {
					return err
				}
			}
			var prevBits uint64
			for _, p := range bs.periods {
				bits := math.Float64bits(p)
				if err := wu(bits ^ prevBits); err != nil {
					return err
				}
				prevBits = bits
			}
		}
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	return writeFramed(w, BlockMagic, BlockVersion, payload.Bytes())
}

// blockStringTable collects the sorted, deduplicated workload/image/proc
// strings of all series.
func blockStringTable(b *block) ([]string, map[string]uint64) {
	set := map[string]struct{}{}
	for i := range b.series {
		lab := &b.series[i].labels
		set[lab.Workload] = struct{}{}
		set[lab.Image] = struct{}{}
		set[lab.Proc] = struct{}{}
	}
	strs := make([]string, 0, len(set))
	for s := range set {
		strs = append(strs, s)
	}
	sort.Strings(strs)
	idx := make(map[string]uint64, len(strs))
	for i, s := range strs {
		idx[s] = uint64(i)
	}
	return strs, idx
}

// DecodeBlock decodes and validates one block file.
func DecodeBlock(raw []byte) (*block, error) {
	payload, err := checkFrame(raw, BlockMagic, BlockVersion)
	if err != nil {
		return nil, err
	}
	br := bytes.NewReader(payload)
	b := &block{}
	if b.machine, err = readString(br); err != nil {
		return nil, err
	}
	if b.machine == "" {
		return nil, errors.New("tsdb: block without machine label")
	}
	ru := func(dst ...*uint64) error {
		for _, d := range dst {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return err
			}
			*d = v
		}
		return nil
	}
	if err := ru(&b.firstSeq, &b.lastSeq, &b.minEpoch, &b.maxEpoch, &b.downsample); err != nil {
		return nil, err
	}
	if b.firstSeq == 0 || b.firstSeq > b.lastSeq {
		return nil, fmt.Errorf("tsdb: bad block sequence range [%d, %d]", b.firstSeq, b.lastSeq)
	}
	if b.downsample == 1 || b.downsample > maxDownsample {
		return nil, fmt.Errorf("tsdb: bad downsample factor %d", b.downsample)
	}
	if b.downsample == 0 {
		if err := b.decodeMetas(br); err != nil {
			return nil, err
		}
	} else {
		if err := b.decodeBuckets(br); err != nil {
			return nil, err
		}
	}
	strs, err := decodeStringTable(br)
	if err != nil {
		return nil, err
	}
	if err := b.decodeSeries(br, strs); err != nil {
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("tsdb: %d trailing bytes", br.Len())
	}
	return b, nil
}

func (b *block) decodeMetas(br *bytes.Reader) error {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if n == 0 {
		return errors.New("tsdb: block without epochs")
	}
	if n > uint64(br.Len())/3+1 {
		return fmt.Errorf("tsdb: epoch count %d exceeds payload", n)
	}
	b.metas = make([]epochMeta, 0, n)
	var prevEpoch uint64
	var prevWall int64
	var prevBits uint64
	for i := uint64(0); i < n; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if d == 0 || prevEpoch > math.MaxUint64-d {
			return errors.New("tsdb: epoch metadata not strictly ascending")
		}
		wd, err := binary.ReadVarint(br)
		if err != nil {
			return err
		}
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		prevEpoch += d
		prevWall += wd
		prevBits ^= bits
		period, err := readPeriodBits(prevBits)
		if err != nil {
			return err
		}
		b.metas = append(b.metas, epochMeta{prevEpoch, prevWall, period})
	}
	if b.minEpoch != b.metas[0].epoch || b.maxEpoch != b.metas[len(b.metas)-1].epoch {
		return errors.New("tsdb: block epoch bounds disagree with metadata")
	}
	return nil
}

func (b *block) decodeBuckets(br *bytes.Reader) error {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if n == 0 {
		return errors.New("tsdb: block without buckets")
	}
	if n > uint64(br.Len())/3+1 {
		return fmt.Errorf("tsdb: bucket count %d exceeds payload", n)
	}
	b.buckets = make([]bucketMeta, 0, n)
	var prevEpoch uint64
	var prevWall int64
	for i := uint64(0); i < n; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if d == 0 || prevEpoch > math.MaxUint64-d {
			return errors.New("tsdb: buckets not strictly ascending")
		}
		cover, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		wd, err := binary.ReadVarint(br)
		if err != nil {
			return err
		}
		prevEpoch += d
		prevWall += wd
		if bucketStart(prevEpoch, b.downsample) != prevEpoch {
			return fmt.Errorf("tsdb: bucket %d not aligned to factor %d", prevEpoch, b.downsample)
		}
		// A shift count of 64 (factor == maxDownsample) is defined in Go
		// and yields 0, keeping the full-bitmap case valid.
		if cover == 0 || cover>>b.downsample != 0 {
			return fmt.Errorf("tsdb: bucket coverage %#x exceeds factor %d", cover, b.downsample)
		}
		b.buckets = append(b.buckets, bucketMeta{prevEpoch, cover, prevWall})
	}
	if min, max := bucketBounds(b.buckets); b.minEpoch != min || b.maxEpoch != max {
		return errors.New("tsdb: block epoch bounds disagree with buckets")
	}
	return nil
}

func decodeStringTable(br *bytes.Reader) ([]string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > uint64(br.Len())+1 {
		return nil, fmt.Errorf("tsdb: string count %d exceeds payload", n)
	}
	strs := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := readString(br)
		if err != nil {
			return nil, err
		}
		if i > 0 && s <= strs[i-1] {
			return nil, errors.New("tsdb: string table not strictly ascending")
		}
		strs = append(strs, s)
	}
	return strs, nil
}

func (b *block) decodeSeries(br *bytes.Reader, strs []string) error {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if n > uint64(br.Len())/8+1 {
		return fmt.Errorf("tsdb: series count %d exceeds payload", n)
	}
	b.series = make([]bseries, 0, n)
	var prevLab Labels
	for i := uint64(0); i < n; i++ {
		var wi, ii, pi uint64
		for _, d := range []*uint64{&wi, &ii, &pi} {
			if *d, err = binary.ReadUvarint(br); err != nil {
				return err
			}
			if *d >= uint64(len(strs)) {
				return fmt.Errorf("tsdb: string index %d out of range", *d)
			}
		}
		evb, err := br.ReadByte()
		if err != nil {
			return err
		}
		if sim.Event(evb) >= sim.NumEvents {
			return fmt.Errorf("tsdb: bad event %d", evb)
		}
		lab := Labels{
			Machine: b.machine, Workload: strs[wi], Image: strs[ii],
			Proc: strs[pi], Event: sim.Event(evb),
		}
		if i > 0 && !seriesLess(&prevLab, &lab) {
			return errors.New("tsdb: series not strictly ascending")
		}
		prevLab = lab
		bs, err := b.decodeOneSeries(br, lab)
		if err != nil {
			return err
		}
		b.series = append(b.series, *bs)
		b.points += len(bs.epochs)
	}
	return nil
}

func (b *block) decodeOneSeries(br *bytes.Reader, lab Labels) (*bseries, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, errors.New("tsdb: empty series")
	}
	minBytes := uint64(3)
	if b.downsample > 0 {
		minBytes = 6
	}
	if n > uint64(br.Len())/minBytes+1 {
		return nil, fmt.Errorf("tsdb: point count %d exceeds payload", n)
	}
	bs := &bseries{
		labels:  lab,
		epochs:  make([]uint64, n),
		samples: make([]uint64, n),
		insts:   make([]uint64, n),
		walls:   make([]int64, n),
		periods: make([]float64, n),
	}
	var prev uint64
	for j := range bs.epochs {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if prev > math.MaxUint64-d {
			return nil, errors.New("tsdb: series epochs overflow")
		}
		prev += d
		if b.downsample > 0 && j > 0 && d == 0 {
			return nil, errors.New("tsdb: duplicate bucket in series")
		}
		bs.epochs[j] = prev
	}
	for _, col := range [][]uint64{bs.samples, bs.insts} {
		prev = 0
		for j := range col {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			prev += uint64(d)
			col[j] = prev
		}
	}
	if b.downsample == 0 {
		// Join wall/period from the epoch-metadata table; every point's
		// epoch must be present there.
		mi := 0
		for j, e := range bs.epochs {
			for mi < len(b.metas) && b.metas[mi].epoch < e {
				mi++
			}
			if mi == len(b.metas) || b.metas[mi].epoch != e {
				return nil, fmt.Errorf("tsdb: series epoch %d missing from metadata", e)
			}
			bs.walls[j] = b.metas[mi].wall
			bs.periods[j] = b.metas[mi].period
		}
		return bs, nil
	}
	bi := 0
	for j, e := range bs.epochs {
		for bi < len(b.buckets) && b.buckets[bi].epoch < e {
			bi++
		}
		if bi == len(b.buckets) || b.buckets[bi].epoch != e {
			return nil, fmt.Errorf("tsdb: series bucket %d missing from bucket table", e)
		}
		bs.walls[j] = b.buckets[bi].wall
	}
	bs.mins = make([]uint64, n)
	bs.maxs = make([]uint64, n)
	for j := range bs.mins {
		if bs.mins[j], err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
	}
	for j := range bs.maxs {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		bs.maxs[j] = bs.mins[j] + d
	}
	var prevBits uint64
	for j := range bs.periods {
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		prevBits ^= bits
		if bs.periods[j], err = readPeriodBits(prevBits); err != nil {
			return nil, err
		}
	}
	return bs, nil
}
