package tsdb

// source is one on-disk file — a raw segment or a block — plus the label
// summary the query planner prunes against. Sources are immutable once
// built; the DB only adds and removes whole sources under db.mu, so a
// query that snapshotted a source's pointer can keep scanning it
// lock-free even while compaction retires the file.
type source struct {
	fileSeq uint64 // sequence number in the file name; allocation order
	// ordSeq orders a source's points against other sources' points for
	// duplicate-(labels, epoch) resolution: the raw segment sequence for
	// raw sources, and the highest consumed segment sequence (lastSeq)
	// for blocks. Compaction preserves it, which is what keeps Select
	// byte-identical across compaction (see Select's ordering contract).
	ordSeq   uint64
	path     string
	bytes    int64
	machine  string
	minEpoch uint64
	maxEpoch uint64

	workloads map[string]struct{}
	images    map[string]struct{}
	procs     map[string]struct{}
	events    uint32 // bitmask by sim.Event

	seg *segment // exactly one of seg/blk is set
	blk *block
}

func sourceFromBatch(seq uint64, path string, size int64, b *Batch) *source {
	s := &source{
		fileSeq:   seq,
		ordSeq:    seq,
		path:      path,
		bytes:     size,
		machine:   b.Machine,
		minEpoch:  b.Epoch,
		maxEpoch:  b.Epoch,
		workloads: map[string]struct{}{b.Workload: {}},
		images:    map[string]struct{}{},
		procs:     map[string]struct{}{},
		seg: &segment{
			epoch:  b.Epoch,
			wall:   b.Wall,
			period: b.Period,
			points: batchPoints(b),
		},
	}
	for _, r := range b.Records {
		s.images[r.Image] = struct{}{}
		s.procs[r.Proc] = struct{}{}
		s.events |= 1 << uint(r.Event)
	}
	return s
}

func sourceFromBlock(seq uint64, path string, size int64, bl *block) *source {
	s := &source{
		fileSeq:   seq,
		ordSeq:    bl.lastSeq,
		path:      path,
		bytes:     size,
		machine:   bl.machine,
		minEpoch:  bl.minEpoch,
		maxEpoch:  bl.maxEpoch,
		workloads: map[string]struct{}{},
		images:    map[string]struct{}{},
		procs:     map[string]struct{}{},
		blk:       bl,
	}
	for i := range bl.series {
		bs := &bl.series[i]
		s.workloads[bs.labels.Workload] = struct{}{}
		s.images[bs.labels.Image] = struct{}{}
		s.procs[bs.labels.Proc] = struct{}{}
		s.events |= 1 << uint(bs.labels.Event)
	}
	return s
}

// addSource indexes s. Caller holds db.mu (or has exclusive access during
// Open); srcs stays ascending by fileSeq because sequences are allocated
// monotonically and Open sorts before inserting.
func (db *DB) addSource(s *source) {
	db.srcs = append(db.srcs, s)
	db.byMachine[s.machine] = append(db.byMachine[s.machine], s)
	for img := range s.images {
		db.byImage[img] = append(db.byImage[img], s)
	}
}

// removeSource drops s from every posting list. Caller holds db.mu.
func (db *DB) removeSource(s *source) {
	db.srcs = dropSource(db.srcs, s)
	if rest := dropSource(db.byMachine[s.machine], s); len(rest) > 0 {
		db.byMachine[s.machine] = rest
	} else {
		delete(db.byMachine, s.machine)
	}
	for img := range s.images {
		if rest := dropSource(db.byImage[img], s); len(rest) > 0 {
			db.byImage[img] = rest
		} else {
			delete(db.byImage, img)
		}
	}
}

func dropSource(list []*source, s *source) []*source {
	for i, x := range list {
		if x == s {
			return append(list[:i:i], list[i+1:]...)
		}
	}
	return list
}

// overlaps reports whether the source's epoch range intersects the
// matcher's, and matchesSource whether the source can contain any
// matching point at all — the planner's pruning test against the label
// summary (posting lists narrow the candidate list first; this rejects
// the rest without touching point data).
func (s *source) matchesSource(m Matcher) bool {
	if m.Machine != "" && s.machine != m.Machine {
		return false
	}
	if m.FromEpoch > s.maxEpoch {
		return false
	}
	if m.ToEpoch != 0 && m.ToEpoch < s.minEpoch {
		return false
	}
	if m.Workload != "" {
		if _, ok := s.workloads[m.Workload]; !ok {
			return false
		}
	}
	if m.Image != "" {
		if _, ok := s.images[m.Image]; !ok {
			return false
		}
	}
	if m.Proc != "" {
		if _, ok := s.procs[m.Proc]; !ok {
			return false
		}
	}
	if !m.AnyEvent && s.events&(1<<uint(m.Event)) == 0 {
		return false
	}
	return true
}
