package tsdb

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dcpi/internal/atomicio"
)

// CompactOptions configures one Compact pass.
type CompactOptions struct {
	// CompactAfter merges a machine's raw segments into one block once at
	// least this many have accumulated; values <= 1 merge whatever is
	// there. Raw segments below the threshold are left alone, so a
	// periodic pass amortizes block rewrites instead of rewriting per
	// scrape.
	CompactAfter int
	// RawRetention is how many of the newest epochs (measured from the
	// fleet-wide max epoch) stay at raw fidelity. 0 disables downsampling
	// entirely — the horizon must be explicit, because downsampling is
	// lossy.
	RawRetention uint64
	// Downsample is the bucket width in epochs applied to blocks wholly
	// behind the raw-retention horizon; 0 or 1 disables. Capped at 64 so
	// each bucket's per-epoch coverage fits one bitmap word (which is what
	// keeps HasEpoch exact after downsampling).
	Downsample uint64
}

// CompactStats reports what one Compact pass did.
type CompactStats struct {
	SegmentsCompacted int   // raw segments merged into blocks
	BlocksWritten     int   // new raw-fidelity blocks
	BlocksDownsampled int   // raw blocks rewritten as aggregates
	BytesBefore       int64 // store size entering the pass
	BytesAfter        int64 // store size leaving the pass
}

// Compact merges each machine's accumulated raw segments into one block
// (per machine, per pass) and then rewrites raw blocks wholly behind the
// raw-retention horizon as downsampled aggregates. Each block is
// committed with atomicio (temp+fsync+rename) before its inputs are
// unlinked, so a crash at any point leaves either the inputs, or the
// block plus leftover inputs that Open reclaims by sequence range —
// never a gap and never a duplicate.
//
// On raw-retained ranges queries return byte-identical results before
// and after: compaction preserves every point, the ingestion order of
// duplicate (labels, epoch) points, and the source ordering key queries
// merge by. The one exception is a raw segment whose wall/period
// metadata conflicts with an earlier segment for the same epoch (data
// Append refuses, but older files may carry): it is quarantined aside as
// NAME.bad rather than merged, because canonicalizing its metadata would
// silently change its points' query results.
func (db *DB) Compact(o CompactOptions) (CompactStats, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := CompactStats{BytesBefore: db.sizeBytes, BytesAfter: db.sizeBytes}
	if db.opts.ReadOnly {
		return st, errors.New("tsdb: store opened read-only")
	}
	if o.Downsample > 1 && o.RawRetention == 0 {
		return st, errors.New("tsdb: -downsample needs a -raw-retention horizon (refusing to downsample everything)")
	}
	if o.Downsample > maxDownsample {
		return st, fmt.Errorf("tsdb: -downsample %d exceeds the maximum factor %d (bucket coverage is a 64-bit bitmap)", o.Downsample, maxDownsample)
	}
	min := o.CompactAfter
	if min < 1 {
		min = 1
	}
	machines := make([]string, 0, len(db.byMachine))
	for m := range db.byMachine {
		machines = append(machines, m)
	}
	sort.Strings(machines)
	for _, m := range machines {
		var raws []*source
		for _, s := range db.byMachine[m] {
			if s.seg != nil {
				raws = append(raws, s)
			}
		}
		if len(raws) < min {
			continue
		}
		sort.Slice(raws, func(i, j int) bool { return raws[i].fileSeq < raws[j].fileSeq })
		raws = db.quarantineMetaConflictsLocked(raws)
		src, err := db.writeBlockLocked(buildBlock(m, raws))
		if err != nil {
			db.publish()
			return st, fmt.Errorf("tsdb: compacting %s: %w", m, err)
		}
		db.addSource(src)
		db.sizeBytes += src.bytes
		st.BlocksWritten++
		st.SegmentsCompacted += len(raws)
		if db.testCrashMidCompact {
			st.BytesAfter = db.sizeBytes
			db.publish()
			return st, nil
		}
		for _, s := range raws {
			os.Remove(s.path)
			db.removeSource(s)
			db.sizeBytes -= s.bytes
		}
		db.compactions++
	}
	if o.Downsample > 1 {
		if err := db.downsampleLocked(o, &st); err != nil {
			db.publish()
			return st, err
		}
	}
	db.retain()
	st.BytesAfter = db.sizeBytes
	db.publish()
	return st, nil
}

// quarantineMetaConflictsLocked drops raw segments (ascending fileSeq)
// whose wall/period metadata disagrees with an earlier-sequence segment
// for the same epoch. Append refuses such batches, but files written by
// older code can still carry them; merging one into a block would let
// first-writer-wins canonicalization silently change its points' query
// results across compaction. Conflicting files are renamed aside as
// NAME.bad like decode failures and their points leave the index.
// Returns the surviving segments. Caller holds db.mu.
func (db *DB) quarantineMetaConflictsLocked(raws []*source) []*source {
	first := map[uint64]*segment{}
	live := raws[:0]
	for _, s := range raws {
		f := first[s.seg.epoch]
		switch {
		case f == nil:
			first[s.seg.epoch] = s.seg
		case f.wall != s.seg.wall || f.period != s.seg.period:
			os.Rename(s.path, s.path+".bad")
			db.removeSource(s)
			db.sizeBytes -= s.bytes
			db.quarantined++
			continue
		}
		live = append(live, s)
	}
	return live
}

// downsampleLocked rewrites every raw-fidelity block that lies wholly
// behind the horizon (fleet max epoch minus RawRetention). Caller holds
// db.mu.
func (db *DB) downsampleLocked(o CompactOptions, st *CompactStats) error {
	var fleetMax uint64
	for _, s := range db.srcs {
		if s.maxEpoch > fleetMax {
			fleetMax = s.maxEpoch
		}
	}
	if fleetMax <= o.RawRetention {
		return nil
	}
	horizon := fleetMax - o.RawRetention
	var victims []*source
	for _, s := range db.srcs {
		if s.blk != nil && s.blk.downsample == 0 && s.maxEpoch <= horizon {
			victims = append(victims, s)
		}
	}
	for _, s := range victims {
		nsrc, err := db.writeBlockLocked(downsampleBlock(s.blk, o.Downsample))
		if err != nil {
			return fmt.Errorf("tsdb: downsampling %s: %w", s.machine, err)
		}
		db.addSource(nsrc)
		db.sizeBytes += nsrc.bytes
		os.Remove(s.path)
		db.removeSource(s)
		db.sizeBytes -= s.bytes
		st.BlocksDownsampled++
		db.downsampled++
	}
	return nil
}

// writeBlockLocked encodes and durably writes bl under a fresh file
// sequence, returning its indexable source. Caller holds db.mu.
func (db *DB) writeBlockLocked(bl *block) (*source, error) {
	var buf bytes.Buffer
	if err := EncodeBlock(&buf, bl); err != nil {
		return nil, err
	}
	seq := db.nextSeq
	db.nextSeq++
	path := filepath.Join(db.dir, blkName(seq))
	if err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	}); err != nil {
		return nil, err
	}
	return sourceFromBlock(seq, path, int64(buf.Len()), bl), nil
}
