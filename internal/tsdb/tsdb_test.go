package tsdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dcpi/internal/sim"
)

func testBatch(machine string, epoch uint64) Batch {
	return Batch{
		Machine:  machine,
		Workload: "wave5",
		Epoch:    epoch,
		Wall:     1_000_000,
		Period:   62000,
		Records: []Record{
			{Image: "/usr/bin/wave5", Event: sim.EvCycles, Samples: 100 + epoch, Insts: 5000},
			{Image: "/usr/bin/wave5", Event: sim.EvIMiss, Samples: 7},
			{Image: "/kernel", Event: sim.EvCycles, Samples: 31 + epoch},
		},
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	b := testBatch("m00", 3)
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, &b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSegment(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, b) {
		t.Errorf("round trip changed batch:\nin  %+v\nout %+v", b, *got)
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	b := testBatch("m00", 1)
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, &b); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, i := range []int{0, 9, 12, 20, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0xff
		if _, err := DecodeSegment(bad); err == nil {
			t.Errorf("flipping byte %d went undetected", i)
		}
	}
	if _, err := DecodeSegment(raw[:len(raw)/2]); err == nil {
		t.Error("truncated segment decoded")
	}
}

func TestAppendReopenQuarantine(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 4; e++ {
		if err := db.Append(testBatch("m00", e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Append(testBatch("m01", 1)); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats(); got.Segments != 5 || got.Points != 15 {
		t.Fatalf("stats after append: %+v", got)
	}
	if !db.HasEpoch("m00", 3) || db.HasEpoch("m00", 9) || db.HasEpoch("m01", 2) {
		t.Error("HasEpoch wrong")
	}
	if got := db.MaxEpoch("m00"); got != 4 {
		t.Errorf("MaxEpoch(m00) = %d, want 4", got)
	}

	// Corrupt one segment and leave a stale temp file; reopen must
	// quarantine the former, delete the latter, and keep everything else.
	if err := os.WriteFile(filepath.Join(dir, segName(2)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(9)+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := db2.Stats()
	if st.Segments != 4 || st.Quarantined != 1 {
		t.Fatalf("stats after corrupt reopen: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(2)+".bad")); err != nil {
		t.Errorf("corrupt segment not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(9)+".tmp")); !os.IsNotExist(err) {
		t.Error("stale temp file survived reopen")
	}
	// The quarantined epoch is gone from the index; the rest remain.
	if db2.HasEpoch("m00", 2) {
		t.Error("quarantined segment still queryable")
	}
	if !db2.HasEpoch("m00", 4) || !db2.HasEpoch("m01", 1) {
		t.Error("intact segments lost on reopen")
	}
	// New appends resume past the highest surviving sequence number.
	if err := db2.Append(testBatch("m02", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(6))); err != nil {
		t.Errorf("append after reopen did not take seq 6: %v", err)
	}
}

func TestRetentionCap(t *testing.T) {
	dir := t.TempDir()
	probe, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Append(testBatch("m00", 1)); err != nil {
		t.Fatal(err)
	}
	segBytes := probe.Stats().SizeBytes

	dir2 := t.TempDir()
	db, err := Open(dir2, Options{MaxBytes: 3 * segBytes})
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 10; e++ {
		if err := db.Append(testBatch("m00", e)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Segments != 3 || st.Evicted != 7 {
		t.Fatalf("retention kept %d segments, evicted %d (want 3, 7)", st.Segments, st.Evicted)
	}
	// Oldest epochs were dropped, newest kept.
	if db.HasEpoch("m00", 1) || !db.HasEpoch("m00", 10) {
		t.Error("retention evicted the wrong end")
	}
	entries, _ := os.ReadDir(dir2)
	var segs int
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			segs++
		}
	}
	if segs != 3 {
		t.Errorf("%d segment files on disk, want 3", segs)
	}
}

func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(testBatch("m00", 1)); err != nil {
		t.Fatal(err)
	}
	// Plant corruption: a read-only open must index around it without
	// renaming (the collector owning the directory does the quarantine).
	if err := os.WriteFile(filepath.Join(dir, segName(7)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ro.Append(testBatch("m00", 2)); err == nil {
		t.Error("append on read-only store succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, segName(7))); err != nil {
		t.Errorf("read-only open renamed the corrupt segment: %v", err)
	}
	if !ro.HasEpoch("m00", 1) {
		t.Error("read-only open lost intact data")
	}
}

func buildFleet(t *testing.T, machines int, epochs uint64) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < machines; m++ {
		for e := uint64(1); e <= epochs; e++ {
			b := Batch{
				Machine:  fmt.Sprintf("m%02d", m),
				Workload: "wave5",
				Epoch:    e,
				Wall:     2_000_000,
				Period:   60000,
				Records: []Record{
					{Image: "/usr/bin/wave5", Event: sim.EvCycles, Samples: 10 * e, Insts: 1000 * e},
					{Image: "/kernel", Event: sim.EvCycles, Samples: 5, Insts: 100},
					{Image: "/usr/bin/wave5", Event: sim.EvIMiss, Samples: 1},
				},
			}
			if err := db.Append(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestRangeQuery(t *testing.T) {
	db := buildFleet(t, 4, 5)
	rows := RangeQuery(db, "/usr/bin/wave5", sim.EvCycles, 2, 4)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for i, r := range rows {
		e := uint64(2 + i)
		wantSamples := 4 * 10 * e
		wantInsts := 4 * 1000 * e
		if r.Epoch != e || r.Machines != 4 || r.Samples != wantSamples || r.Insts != wantInsts {
			t.Errorf("row %d = %+v, want epoch %d machines 4 samples %d insts %d",
				i, r, e, wantSamples, wantInsts)
		}
		wantCPI := (float64(wantSamples) * 60000) / float64(wantInsts)
		if r.CPI != wantCPI {
			t.Errorf("epoch %d CPI = %v, want %v", e, r.CPI, wantCPI)
		}
		wantShare := 100 * float64(10*e) / float64(10*e+5)
		if diff := r.SharePct - wantShare; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("epoch %d share = %v, want %v", e, r.SharePct, wantShare)
		}
	}
}

func TestTopImagesAndDeltas(t *testing.T) {
	db := buildFleet(t, 2, 6)
	top := TopImages(db, sim.EvCycles, 1, 6, 0)
	if len(top) != 2 || top[0].Image != "/usr/bin/wave5" || top[1].Image != "/kernel" {
		t.Fatalf("top images: %+v", top)
	}
	// wave5 samples grow with epoch while kernel's are flat, so wave5's
	// share rises from window A (epochs 1-3) to window B (epochs 4-6).
	deltas := TopDeltas(db, sim.EvCycles, 1, 3, 4, 6, 0)
	if len(deltas) != 2 {
		t.Fatalf("deltas: %+v", deltas)
	}
	var wave, kernel float64
	for _, d := range deltas {
		switch d.Name {
		case "/usr/bin/wave5":
			wave = d.Delta()
		case "/kernel":
			kernel = d.Delta()
		}
	}
	if wave <= 0 || kernel >= 0 {
		t.Errorf("delta directions wrong: wave5 %+.2f kernel %+.2f", wave, kernel)
	}
}
