package tsdb

import (
	"sort"

	"dcpi/internal/analysis"
	"dcpi/internal/sim"
)

// Matcher selects points. Empty string fields match anything; epochs are
// an inclusive [From, To] range with To == 0 meaning "no upper bound".
type Matcher struct {
	Machine   string
	Workload  string
	Image     string
	Event     sim.Event
	AnyEvent  bool // when false, Event must match (EvCycles is the zero value)
	FromEpoch uint64
	ToEpoch   uint64
}

func (m Matcher) matches(p Point) bool {
	if m.Machine != "" && p.Machine != m.Machine {
		return false
	}
	if m.Workload != "" && p.Workload != m.Workload {
		return false
	}
	if m.Image != "" && p.Image != m.Image {
		return false
	}
	if !m.AnyEvent && p.Event != m.Event {
		return false
	}
	if p.Epoch < m.FromEpoch {
		return false
	}
	if m.ToEpoch != 0 && p.Epoch > m.ToEpoch {
		return false
	}
	return true
}

// Select returns every matching point, ordered by (epoch, machine, image,
// event) so results are deterministic regardless of scrape order.
func (db *DB) Select(m Matcher) []Point {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []Point
	for _, s := range db.segs {
		for _, p := range s.points {
			if m.matches(p) {
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Image != b.Image {
			return a.Image < b.Image
		}
		return a.Event < b.Event
	})
	return out
}

// FleetMaxEpoch returns the highest epoch stored for any machine.
func (db *DB) FleetMaxEpoch() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var max uint64
	for _, s := range db.segs {
		for _, p := range s.points {
			if p.Epoch > max {
				max = p.Epoch
			}
		}
	}
	return max
}

// RangeRow is one epoch of a fleet range query for a single image: the
// per-epoch aggregate over every machine that reported that epoch.
type RangeRow struct {
	Epoch    uint64  `json:"epoch"`
	Machines int     `json:"machines"`
	Samples  uint64  `json:"samples"`
	Cycles   float64 `json:"cycles"`    // samples × per-point period
	Insts    uint64  `json:"insts"`     // 0 when no machine had exact counts
	CPI      float64 `json:"cpi"`       // Cycles/Insts; 0 when Insts is 0
	SharePct float64 `json:"share_pct"` // of all images' attributed cycles that epoch
}

// RangeQuery answers "CPI of image across the fleet over [from, to]": one
// row per epoch, aggregating every machine's point for that image and
// event. Share is the image's slice of all attributed cycles (same event)
// in the epoch, fleet-wide.
func RangeQuery(db *DB, image string, ev sim.Event, from, to uint64) []RangeRow {
	sel := db.Select(Matcher{Image: image, Event: ev, FromEpoch: from, ToEpoch: to})
	all := db.Select(Matcher{Event: ev, FromEpoch: from, ToEpoch: to})

	totalCycles := map[uint64]float64{}
	for _, p := range all {
		totalCycles[p.Epoch] += p.Cycles()
	}

	byEpoch := map[uint64]*RangeRow{}
	machines := map[uint64]map[string]bool{}
	var epochs []uint64
	for _, p := range sel {
		r, ok := byEpoch[p.Epoch]
		if !ok {
			r = &RangeRow{Epoch: p.Epoch}
			byEpoch[p.Epoch] = r
			machines[p.Epoch] = map[string]bool{}
			epochs = append(epochs, p.Epoch)
		}
		if !machines[p.Epoch][p.Machine] {
			machines[p.Epoch][p.Machine] = true
			r.Machines++
		}
		r.Samples += p.Samples
		r.Cycles += p.Cycles()
		r.Insts += p.Insts
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	out := make([]RangeRow, 0, len(epochs))
	for _, e := range epochs {
		r := byEpoch[e]
		if r.Insts > 0 {
			r.CPI = r.Cycles / float64(r.Insts)
		}
		if t := totalCycles[e]; t > 0 {
			r.SharePct = 100 * r.Cycles / t
		}
		out = append(out, *r)
	}
	return out
}

// TopRow is one image of a fleet-wide hot-image ranking.
type TopRow struct {
	Image    string  `json:"image"`
	Samples  uint64  `json:"samples"`
	Cycles   float64 `json:"cycles"`
	SharePct float64 `json:"share_pct"`
}

// TopImages ranks images by attributed cycles over [from, to], fleet-wide.
func TopImages(db *DB, ev sim.Event, from, to uint64, n int) []TopRow {
	pts := db.Select(Matcher{Event: ev, FromEpoch: from, ToEpoch: to})
	agg := map[string]*TopRow{}
	var total float64
	for _, p := range pts {
		r, ok := agg[p.Image]
		if !ok {
			r = &TopRow{Image: p.Image}
			agg[p.Image] = r
		}
		r.Samples += p.Samples
		r.Cycles += p.Cycles()
		total += p.Cycles()
	}
	out := make([]TopRow, 0, len(agg))
	for _, r := range agg {
		if total > 0 {
			r.SharePct = 100 * r.Cycles / total
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Image < out[j].Image
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopDeltas ranks images by how much their fleet-wide cycle share moved
// between window A and window B (both inclusive epoch ranges), reusing the
// share-delta ranking dcpidiff applies to a pair of databases.
func TopDeltas(db *DB, ev sim.Event, aFrom, aTo, bFrom, bTo uint64, n int) []analysis.DeltaRow {
	window := func(from, to uint64) map[string]uint64 {
		m := map[string]uint64{}
		for _, p := range db.Select(Matcher{Event: ev, FromEpoch: from, ToEpoch: to}) {
			m[p.Image] += p.Samples
		}
		return m
	}
	rows := analysis.ShareDeltas(window(aFrom, aTo), window(bFrom, bTo))
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}
