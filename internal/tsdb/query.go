package tsdb

import (
	"sort"
	"sync"
	"sync/atomic"

	"dcpi/internal/analysis"
	"dcpi/internal/par"
	"dcpi/internal/sim"
)

// Matcher selects points. Empty string fields match anything; epochs are
// an inclusive [From, To] range with To == 0 meaning "no upper bound".
//
// Procedure-level points are opt-in so that per-image aggregates never
// double-count: the default (Proc == "", AnyProc == false) matches only
// image-level points, Proc == name matches only that procedure's points,
// and AnyProc matches both levels.
type Matcher struct {
	Machine   string
	Workload  string
	Image     string
	Proc      string
	Event     sim.Event
	AnyEvent  bool // when false, Event must match (EvCycles is the zero value)
	AnyProc   bool // when false and Proc == "", only image-level points match
	FromEpoch uint64
	ToEpoch   uint64
}

// labelsMatch applies every non-epoch constraint.
func (m Matcher) labelsMatch(lab Labels) bool {
	if m.Machine != "" && lab.Machine != m.Machine {
		return false
	}
	if m.Workload != "" && lab.Workload != m.Workload {
		return false
	}
	if m.Image != "" && lab.Image != m.Image {
		return false
	}
	if m.Proc != "" {
		if lab.Proc != m.Proc {
			return false
		}
	} else if !m.AnyProc && lab.Proc != "" {
		return false
	}
	if !m.AnyEvent && lab.Event != m.Event {
		return false
	}
	return true
}

func (m Matcher) matches(p Point) bool {
	if p.Epoch < m.FromEpoch {
		return false
	}
	if m.ToEpoch != 0 && p.Epoch > m.ToEpoch {
		return false
	}
	return m.labelsMatch(p.Labels)
}

func labelsLess(a, b *Labels) bool {
	if a.Machine != b.Machine {
		return a.Machine < b.Machine
	}
	if a.Workload != b.Workload {
		return a.Workload < b.Workload
	}
	if a.Image != b.Image {
		return a.Image < b.Image
	}
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	return a.Event < b.Event
}

// chunk is one schedulable unit of a query: either a single raw point
// (bs == nil) or a whole block series. ord/sub are the ordering key for
// duplicate-(labels, epoch) resolution — segment sequence and in-segment
// record index for raw points, consumed-sequence and column index for
// block series — which compaction preserves, so a query's accumulation
// order is identical before and after compacting.
type chunk struct {
	lab Labels
	ord uint64
	sub int
	bs  *bseries
	pt  Point
}

func chunkLess(a, b *chunk) bool {
	if a.lab != b.lab {
		return labelsLess(&a.lab, &b.lab)
	}
	if a.ord != b.ord {
		return a.ord < b.ord
	}
	return a.sub < b.sub
}

// plan resolves a matcher to the chunks it can touch, pruning with the
// posting lists and per-source label summaries, plus the canonical epoch
// bounds [lo, hi] of the scan. It holds db.mu only while snapshotting
// source references — chunks point into immutable data, so the scan
// itself runs lock-free.
func (db *DB) plan(m Matcher) ([]chunk, uint64, uint64) {
	db.mu.Lock()
	base := db.srcs
	if m.Machine != "" {
		base = db.byMachine[m.Machine]
	}
	if m.Image != "" {
		li := db.byImage[m.Image]
		if len(li) < len(base) {
			base = li
		}
	}
	var chunks []chunk
	var hi uint64
	for _, s := range base {
		if !s.matchesSource(m) {
			continue
		}
		if s.maxEpoch > hi {
			hi = s.maxEpoch
		}
		if s.seg != nil {
			for i := range s.seg.points {
				p := s.seg.points[i]
				if !m.matches(p) {
					continue
				}
				chunks = append(chunks, chunk{lab: p.Labels, ord: s.ordSeq, sub: i, pt: p})
			}
		} else {
			for si := range s.blk.series {
				bs := &s.blk.series[si]
				if !m.labelsMatch(bs.labels) {
					continue
				}
				chunks = append(chunks, chunk{lab: bs.labels, ord: s.ordSeq, bs: bs})
			}
		}
	}
	db.mu.Unlock()
	lo := m.FromEpoch
	if lo == 0 {
		lo = 1
	}
	if m.ToEpoch != 0 {
		hi = m.ToEpoch
	}
	sort.Slice(chunks, func(i, j int) bool { return chunkLess(&chunks[i], &chunks[j]) })
	return chunks, lo, hi
}

// queryWindows is the fan-out width of a scan: the epoch range splits
// into up to this many contiguous windows, scanned concurrently.
const queryWindows = 16

// scanWindows runs fn over every point matching m, partitioned into up
// to queryWindows contiguous epoch windows that are scanned concurrently
// (worker count bounded by the process-wide par.Budget). Within one
// window, points arrive in canonical chunk order — ascending (labels,
// ord, sub), epochs ascending within a series — and each epoch belongs
// to exactly one window. Window boundaries depend only on the epoch
// bounds, never on worker count or storage layout, so per-window
// accumulation (and any window-ordered merge) is deterministic and
// unchanged by compaction. fn may be called concurrently for different
// win values, never for the same one. Returns the window count.
func (db *DB) scanWindows(m Matcher, fn func(win int, p Point, ord uint64, sub int)) int {
	chunks, lo, hi := db.plan(m)
	if len(chunks) == 0 || hi < lo {
		return 0
	}
	span := hi - lo + 1
	nwin := queryWindows
	if span < uint64(nwin) {
		nwin = int(span)
	}
	if span >= 1<<60 {
		nwin = 1 // keep winOf's multiply below from overflowing
	}
	winOf := func(e uint64) int { return int((e - lo) * uint64(nwin) / span) }
	// winStart is the exact inverse partition of winOf: the smallest epoch
	// with winOf(e) == w sits ceil(span*w/nwin) above lo, so
	// winStart(winOf(e)) <= e < winStart(winOf(e)+1) holds for every e in
	// [lo, hi] even when span is not a multiple of nwin. A floor here
	// would disagree with winOf on ragged spans and drop block epochs that
	// fall between the two partitions.
	winStart := func(w int) uint64 {
		return lo + (span*uint64(w)+uint64(nwin)-1)/uint64(nwin)
	}
	winChunks := make([][]chunk, nwin)
	for _, c := range chunks {
		if c.bs == nil {
			w := winOf(c.pt.Epoch)
			winChunks[w] = append(winChunks[w], c)
			continue
		}
		first, last := c.bs.epochs[0], c.bs.epochs[len(c.bs.epochs)-1]
		if first < lo {
			first = lo
		}
		if last > hi {
			last = hi
		}
		if first > last {
			continue
		}
		for w := winOf(first); w <= winOf(last); w++ {
			winChunks[w] = append(winChunks[w], c)
		}
	}
	runWindow := func(w int) {
		ws, we := winStart(w), winStart(w+1)-1
		for i := range winChunks[w] {
			c := &winChunks[w][i]
			if c.bs == nil {
				fn(w, c.pt, c.ord, c.sub)
				continue
			}
			for j := c.bs.searchEpoch(ws); j < len(c.bs.epochs) && c.bs.epochs[j] <= we; j++ {
				fn(w, c.bs.point(j), c.ord, j)
			}
		}
	}
	extra := par.Default().TryExtra(nwin - 1)
	if extra == 0 {
		for w := 0; w < nwin; w++ {
			runWindow(w)
		}
		return nwin
	}
	defer par.Default().Release(extra)
	workers := 1 + extra
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				w := int(next.Add(1)) - 1
				if w >= nwin {
					return
				}
				runWindow(w)
			}
		}()
	}
	wg.Wait()
	return nwin
}

// Select returns every matching point in a documented, deterministic
// total order: ascending (epoch, machine, workload, image, proc, event),
// and — when a re-scrape race stored the same series twice for one epoch
// — duplicates in ingestion order (segment sequence, then in-segment
// record order). The order is a contract, not iteration luck: it is
// stable across process restarts, worker counts, and compaction.
func (db *DB) Select(m Matcher) []Point {
	type rec struct {
		p   Point
		ord uint64
		sub int
	}
	recs := make([][]rec, queryWindows)
	n := db.scanWindows(m, func(w int, p Point, ord uint64, sub int) {
		recs[w] = append(recs[w], rec{p, ord, sub})
	})
	var out []Point
	for w := 0; w < n; w++ {
		rs := recs[w]
		sort.Slice(rs, func(i, j int) bool {
			a, b := &rs[i], &rs[j]
			if a.p.Epoch != b.p.Epoch {
				return a.p.Epoch < b.p.Epoch
			}
			if a.p.Labels != b.p.Labels {
				return labelsLess(&a.p.Labels, &b.p.Labels)
			}
			if a.ord != b.ord {
				return a.ord < b.ord
			}
			return a.sub < b.sub
		})
		for _, r := range rs {
			out = append(out, r.p)
		}
	}
	return out
}

// FleetMaxEpoch returns the highest epoch stored for any machine.
func (db *DB) FleetMaxEpoch() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var max uint64
	for _, s := range db.srcs {
		if s.maxEpoch > max {
			max = s.maxEpoch
		}
	}
	return max
}

// RangeRow is one epoch of a fleet range query for a single image (or a
// single procedure within an image): the per-epoch aggregate over every
// machine that reported that epoch.
type RangeRow struct {
	Epoch    uint64  `json:"epoch"`
	Machines int     `json:"machines"`
	Samples  uint64  `json:"samples"`
	Cycles   float64 `json:"cycles"`    // samples × per-point period
	Insts    uint64  `json:"insts"`     // 0 when no machine had exact counts
	CPI      float64 `json:"cpi"`       // Cycles/Insts; 0 when Insts is 0
	SharePct float64 `json:"share_pct"` // of the denominator's cycles that epoch
}

// RangeQuery answers "CPI of image across the fleet over [from, to]": one
// row per epoch, aggregating every machine's point for that image and
// event. Share is the image's slice of all attributed cycles (same event)
// in the epoch, fleet-wide.
func RangeQuery(db *DB, image string, ev sim.Event, from, to uint64) []RangeRow {
	return RangeQueryProc(db, image, "", ev, from, to)
}

// RangeQueryProc is RangeQuery narrowed to one procedure of the image
// when proc is non-empty; SharePct then reads as the procedure's slice
// of its image's cycles rather than the image's slice of the fleet's.
func RangeQueryProc(db *DB, image, proc string, ev sim.Event, from, to uint64) []RangeRow {
	type winAgg struct {
		rows     map[uint64]*RangeRow
		machines map[uint64]map[string]bool
	}
	aggs := make([]winAgg, queryWindows)
	db.scanWindows(Matcher{Image: image, Proc: proc, Event: ev, FromEpoch: from, ToEpoch: to},
		func(w int, p Point, _ uint64, _ int) {
			a := &aggs[w]
			if a.rows == nil {
				a.rows = map[uint64]*RangeRow{}
				a.machines = map[uint64]map[string]bool{}
			}
			r := a.rows[p.Epoch]
			if r == nil {
				r = &RangeRow{Epoch: p.Epoch}
				a.rows[p.Epoch] = r
				a.machines[p.Epoch] = map[string]bool{}
			}
			if !a.machines[p.Epoch][p.Machine] {
				a.machines[p.Epoch][p.Machine] = true
				r.Machines++
			}
			r.Samples += p.Samples
			r.Cycles += p.Cycles()
			r.Insts += p.Insts
		})
	denom := Matcher{Event: ev, FromEpoch: from, ToEpoch: to}
	if proc != "" {
		denom.Image = image
	}
	totals := make([]map[uint64]float64, queryWindows)
	db.scanWindows(denom, func(w int, p Point, _ uint64, _ int) {
		if totals[w] == nil {
			totals[w] = map[uint64]float64{}
		}
		totals[w][p.Epoch] += p.Cycles()
	})
	totalCycles := map[uint64]float64{}
	for _, t := range totals {
		for e, v := range t {
			totalCycles[e] += v // every epoch lives in exactly one window
		}
	}
	rows := map[uint64]*RangeRow{}
	var epochs []uint64
	for w := range aggs {
		for e, r := range aggs[w].rows {
			rows[e] = r
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	out := make([]RangeRow, 0, len(epochs))
	for _, e := range epochs {
		r := rows[e]
		if r.Insts > 0 {
			r.CPI = r.Cycles / float64(r.Insts)
		}
		if t := totalCycles[e]; t > 0 {
			r.SharePct = 100 * r.Cycles / t
		}
		out = append(out, *r)
	}
	return out
}

// TopRow is one image of a fleet-wide hot-image ranking.
type TopRow struct {
	Image    string  `json:"image"`
	Samples  uint64  `json:"samples"`
	Cycles   float64 `json:"cycles"`
	SharePct float64 `json:"share_pct"`
}

// TopImages ranks images by attributed cycles over [from, to], fleet-wide.
func TopImages(db *DB, ev sim.Event, from, to uint64, n int) []TopRow {
	type winAgg struct {
		rows  map[string]*TopRow
		total float64
	}
	aggs := make([]winAgg, queryWindows)
	db.scanWindows(Matcher{Event: ev, FromEpoch: from, ToEpoch: to},
		func(w int, p Point, _ uint64, _ int) {
			a := &aggs[w]
			if a.rows == nil {
				a.rows = map[string]*TopRow{}
			}
			r := a.rows[p.Image]
			if r == nil {
				r = &TopRow{Image: p.Image}
				a.rows[p.Image] = r
			}
			c := p.Cycles()
			r.Samples += p.Samples
			r.Cycles += c
			a.total += c
		})
	merged, total := mergeTopWindows(aggs[:], func(a *winAgg) (map[string]*TopRow, float64) {
		return a.rows, a.total
	}, func(dst, src *TopRow) {
		dst.Samples += src.Samples
		dst.Cycles += src.Cycles
	}, func(img string) *TopRow { return &TopRow{Image: img} })
	out := make([]TopRow, 0, len(merged))
	for _, r := range merged {
		if total > 0 {
			r.SharePct = 100 * r.Cycles / total
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Image < out[j].Image
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// mergeTopWindows folds per-window ranking partials together in window
// order with sorted keys, so float accumulation order is deterministic.
func mergeTopWindows[A any, R any](aggs []A,
	get func(*A) (map[string]*R, float64),
	add func(dst, src *R),
	fresh func(key string) *R,
) (map[string]*R, float64) {
	merged := map[string]*R{}
	var total float64
	for i := range aggs {
		rows, t := get(&aggs[i])
		total += t
		if rows == nil {
			continue
		}
		keys := make([]string, 0, len(rows))
		for k := range rows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			dst := merged[k]
			if dst == nil {
				dst = fresh(k)
				merged[k] = dst
			}
			add(dst, rows[k])
		}
	}
	return merged, total
}

// ProcRow is one procedure of a per-procedure ranking within an image.
type ProcRow struct {
	Proc     string  `json:"proc"`
	Samples  uint64  `json:"samples"`
	Cycles   float64 `json:"cycles"`
	SharePct float64 `json:"share_pct"` // of the image's cycles over the window
}

// TopProcs ranks one image's procedures by attributed cycles over
// [from, to], fleet-wide. Shares are against the image's image-level
// cycle total, so "(unknown)" attribution and sampling skew are visible
// as shares not summing to 100.
func TopProcs(db *DB, image string, ev sim.Event, from, to uint64, n int) []ProcRow {
	type winAgg struct {
		rows  map[string]*ProcRow
		total float64 // image-level (Proc == "") cycles
	}
	aggs := make([]winAgg, queryWindows)
	db.scanWindows(Matcher{Image: image, AnyProc: true, Event: ev, FromEpoch: from, ToEpoch: to},
		func(w int, p Point, _ uint64, _ int) {
			a := &aggs[w]
			if p.Proc == "" {
				a.total += p.Cycles()
				return
			}
			if a.rows == nil {
				a.rows = map[string]*ProcRow{}
			}
			r := a.rows[p.Proc]
			if r == nil {
				r = &ProcRow{Proc: p.Proc}
				a.rows[p.Proc] = r
			}
			r.Samples += p.Samples
			r.Cycles += p.Cycles()
		})
	merged, total := mergeTopWindows(aggs[:], func(a *winAgg) (map[string]*ProcRow, float64) {
		return a.rows, a.total
	}, func(dst, src *ProcRow) {
		dst.Samples += src.Samples
		dst.Cycles += src.Cycles
	}, func(proc string) *ProcRow { return &ProcRow{Proc: proc} })
	out := make([]ProcRow, 0, len(merged))
	for _, r := range merged {
		if total > 0 {
			r.SharePct = 100 * r.Cycles / total
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Proc < out[j].Proc
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopDeltas ranks images by how much their fleet-wide cycle share moved
// between window A and window B (both inclusive epoch ranges), reusing the
// share-delta ranking dcpidiff applies to a pair of databases.
func TopDeltas(db *DB, ev sim.Event, aFrom, aTo, bFrom, bTo uint64, n int) []analysis.DeltaRow {
	window := func(from, to uint64) map[string]uint64 {
		sums := make([]map[string]uint64, queryWindows)
		db.scanWindows(Matcher{Event: ev, FromEpoch: from, ToEpoch: to},
			func(w int, p Point, _ uint64, _ int) {
				if sums[w] == nil {
					sums[w] = map[string]uint64{}
				}
				sums[w][p.Image] += p.Samples
			})
		m := map[string]uint64{}
		for _, s := range sums {
			for k, v := range s {
				m[k] += v // integer sums: merge order is irrelevant
			}
		}
		return m
	}
	rows := analysis.ShareDeltas(window(aFrom, aTo), window(bFrom, bTo))
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}
