package tsdb

import (
	"fmt"
	"path/filepath"
	"testing"

	"dcpi/internal/sim"
)

// benchStore builds a store shaped like a real fleet scrape: machines x
// epochs batches, each with several images over two event types.
func benchStore(b *testing.B, machines, epochs, images int) *DB {
	b.Helper()
	db, err := Open(filepath.Join(b.TempDir(), "tsdb"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	for m := 0; m < machines; m++ {
		for e := 1; e <= epochs; e++ {
			batch := Batch{
				Machine:  fmt.Sprintf("m%02d", m),
				Workload: "bench",
				Epoch:    uint64(e),
				Wall:     1 << 20,
				Period:   62000,
			}
			for i := 0; i < images; i++ {
				img := fmt.Sprintf("/usr/bin/app%d", i)
				batch.Records = append(batch.Records,
					Record{Image: img, Event: sim.EvCycles, Samples: uint64(100 + i + e), Insts: uint64(5000 * (i + 1))},
					Record{Image: img, Event: sim.EvIMiss, Samples: uint64(10 + i)},
				)
			}
			if err := db.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db
}

// BenchmarkRangeQuery measures the fleet-wide per-image range query over
// a 16-machine x 100-epoch store (the EXPERIMENTS.md demo shape).
func BenchmarkRangeQuery(b *testing.B) {
	db := benchStore(b, 16, 100, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := RangeQuery(db, "/usr/bin/app3", sim.EvCycles, 1, 100)
		if len(rows) != 100 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
	b.ReportMetric(16*100, "points/query")
}

// BenchmarkTopDeltas measures the two-window share-delta ranking over the
// same store.
func BenchmarkTopDeltas(b *testing.B) {
	db := benchStore(b, 16, 100, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := TopDeltas(db, sim.EvCycles, 1, 50, 51, 100, 10)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}
