package tsdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dcpi/internal/sim"
)

// benchRoot holds the shared 50k-epoch stores built once per test-binary
// run; TestMain removes it (b.TempDir would tear it down after the first
// benchmark that used it).
var benchRoot string

func TestMain(m *testing.M) {
	code := m.Run()
	if benchRoot != "" {
		os.RemoveAll(benchRoot)
	}
	os.Exit(code)
}

// benchStore builds a store shaped like a real fleet scrape: machines x
// epochs batches, each with several images over two event types.
func benchStore(b *testing.B, machines, epochs, images int) *DB {
	b.Helper()
	db, err := Open(filepath.Join(b.TempDir(), "tsdb"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	for m := 0; m < machines; m++ {
		for e := 1; e <= epochs; e++ {
			batch := Batch{
				Machine:  fmt.Sprintf("m%02d", m),
				Workload: "bench",
				Epoch:    uint64(e),
				Wall:     1 << 20,
				Period:   62000,
			}
			for i := 0; i < images; i++ {
				img := fmt.Sprintf("/usr/bin/app%d", i)
				batch.Records = append(batch.Records,
					Record{Image: img, Event: sim.EvCycles, Samples: uint64(100 + i + e), Insts: uint64(5000 * (i + 1))},
					Record{Image: img, Event: sim.EvIMiss, Samples: uint64(10 + i)},
				)
			}
			if err := db.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db
}

// BenchmarkRangeQuery measures the fleet-wide per-image range query over
// a 16-machine x 100-epoch store (the EXPERIMENTS.md demo shape).
func BenchmarkRangeQuery(b *testing.B) {
	db := benchStore(b, 16, 100, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := RangeQuery(db, "/usr/bin/app3", sim.EvCycles, 1, 100)
		if len(rows) != 100 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
	b.ReportMetric(16*100, "points/query")
}

// BenchmarkTopDeltas measures the two-window share-delta ranking over the
// same store.
func BenchmarkTopDeltas(b *testing.B) {
	db := benchStore(b, 16, 100, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := TopDeltas(db, sim.EvCycles, 1, 50, 51, 100, 10)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAppend measures the durable ingest path: encode + fsync + index
// of one scraped batch (12 points), the per-(machine, epoch) unit of work.
func BenchmarkAppend(b *testing.B) {
	db, err := Open(filepath.Join(b.TempDir(), "tsdb"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	batch := bigBatch("m00", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Epoch = uint64(i + 1)
		if err := db.Append(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(batch.Records)), "points/op")
}

// The 50k-epoch fleet store: 2 machines x 25k epochs, 6 images over two
// events — the scale where compaction pays. Built once per binary run;
// segment files are written with plain os.WriteFile (per-file fsync would
// make setup ~4x slower and proves nothing about queries).
const (
	bigMachines = 2
	bigEpochs   = 25000
	bigImages   = 6
)

func bigBatch(machine string, e uint64) Batch {
	batch := Batch{
		Machine:  machine,
		Workload: "bench",
		Epoch:    e,
		Wall:     1 << 20,
		Period:   62000,
	}
	for i := 0; i < bigImages; i++ {
		img := fmt.Sprintf("/usr/bin/app%d", i)
		batch.Records = append(batch.Records,
			Record{Image: img, Event: sim.EvCycles, Samples: uint64(100 + i + int(e%97)), Insts: uint64(5000 * (i + 1))},
			Record{Image: img, Event: sim.EvIMiss, Samples: uint64(10 + i)},
		)
	}
	return batch
}

var big struct {
	once               sync.Once
	raw, cmp           string
	rawBytes, cmpBytes int64
	err                error
}

func setupBig(b *testing.B) {
	b.Helper()
	big.once.Do(func() {
		root, err := os.MkdirTemp("", "dcpi-tsdb-bench-")
		if err != nil {
			big.err = err
			return
		}
		benchRoot = root
		big.raw = filepath.Join(root, "raw")
		big.cmp = filepath.Join(root, "cmp")
		for _, d := range []string{big.raw, big.cmp} {
			if big.err = os.MkdirAll(d, 0o755); big.err != nil {
				return
			}
		}
		seq := uint64(1)
		var buf bytes.Buffer
		for m := 0; m < bigMachines; m++ {
			for e := uint64(1); e <= bigEpochs; e++ {
				batch := bigBatch(fmt.Sprintf("m%02d", m), e)
				buf.Reset()
				if big.err = EncodeSegment(&buf, &batch); big.err != nil {
					return
				}
				name := segName(seq)
				seq++
				for _, d := range []string{big.raw, big.cmp} {
					if big.err = os.WriteFile(filepath.Join(d, name), buf.Bytes(), 0o644); big.err != nil {
						return
					}
				}
			}
		}
		db, err := Open(big.cmp, Options{})
		if err != nil {
			big.err = err
			return
		}
		if _, big.err = db.Compact(CompactOptions{CompactAfter: 1}); big.err != nil {
			return
		}
		big.rawBytes, big.cmpBytes = dirSize(big.raw), dirSize(big.cmp)
	})
	if big.err != nil {
		b.Fatal(big.err)
	}
}

func dirSize(dir string) int64 {
	var total int64
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

func benchRangeBig(b *testing.B, dir string, diskBytes int64) {
	db, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := RangeQuery(db, "/usr/bin/app3", sim.EvCycles, 1, bigEpochs)
		if len(rows) != bigEpochs {
			b.Fatalf("got %d rows", len(rows))
		}
	}
	b.ReportMetric(float64(diskBytes)/float64(bigMachines*bigEpochs), "diskB/epoch")
}

// BenchmarkRangeQuery50kRaw scans the full 50k-epoch store in its raw,
// one-segment-per-(machine,epoch) form — the pre-compaction baseline.
func BenchmarkRangeQuery50kRaw(b *testing.B) {
	setupBig(b)
	benchRangeBig(b, big.raw, big.rawBytes)
}

// BenchmarkRangeQuery50kCompact runs the identical query after compaction
// into two delta-encoded blocks.
func BenchmarkRangeQuery50kCompact(b *testing.B) {
	setupBig(b)
	benchRangeBig(b, big.cmp, big.cmpBytes)
}
