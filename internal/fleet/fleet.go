// Package fleet spins up a simulated fleet of profiled machines for the
// continuous-profiling service: N in-process "machines", each with its own
// on-disk profile database and an HTTP exposition endpoint
// (internal/expo), advancing through epochs so a dcpicollect scraper has
// something real to pull.
//
// Each machine's profiles derive from one genuine simulation of its
// assigned workload (internal/dcpi at a small scale, with exact counts so
// CPI is computable). Per-epoch variation is a deterministic, seeded
// perturbation of that base profile — machine m at epoch e always produces
// the same counts — so the whole fleet is reproducible and the scraped
// store can be verified bit-for-bit against the per-machine databases.
// An optional anomaly inflates one image's samples on a slice of the fleet
// after a chosen epoch, giving the top-delta and CPI-regression queries
// real signal; an optional fault injector makes one machine's endpoint
// fail requests, exercising the collector's retry/backoff/staleness path.
package fleet

import (
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dcpi/internal/dcpi"
	"dcpi/internal/expo"
	"dcpi/internal/loader"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
)

// Options configures Start.
type Options struct {
	// Dir is the root directory; machine databases live at Dir/mNN.
	Dir string
	// Machines is the fleet size (default 4).
	Machines int
	// Workloads are assigned round-robin (default {"wave5"}).
	Workloads []string
	// Seed drives the base simulations and all per-epoch jitter.
	Seed uint64
	// Scale is the base-run workload scale (default 0.1).
	Scale float64
	// AnomalyAfter, when > 0, inflates AnomalyImage's sample counts by
	// AnomalyFactor on every anomalous machine (indices 1, 5, 9, ... —
	// m%4 == 1) for epochs strictly greater than AnomalyAfter. Samples
	// grow while executed instructions do not: a CPI regression.
	AnomalyAfter  int
	AnomalyFactor float64 // default 3.0
	AnomalyImage  string  // default: hottest non-kernel image of the base run
	// FaultMachine, when >= 0, wraps that machine's endpoint in a fault
	// injector: the first FaultHardFails requests fail outright with HTTP
	// 500 (enough to exhaust a scrape's retries), and afterwards every
	// FaultEvery-th request still fails (recoverable via retry).
	FaultMachine   int
	FaultHardFails int // default 6
	FaultEvery     int // default 3; 0 disables the residual failures
}

// template is the per-workload base profile a machine perturbs per epoch.
type template struct {
	workload string
	wall     int64
	period   float64
	profiles []profileTemplate
	insts    map[string]uint64
	hotImage string
	loader   *loader.Loader // base run's images, for symbolizing offsets
}

type profileTemplate struct {
	image   string
	event   sim.Event
	offsets []uint64
	counts  []uint64
}

// Machine is one simulated fleet member.
type Machine struct {
	Name     string
	Workload string
	URL      string
	DBDir    string

	fleet *Fleet
	tmpl  *template
	db    *profiledb.DB
	epoch int
	srv   *http.Server
	lis   net.Listener
	anom  bool
}

// Fleet is a running set of machines.
type Fleet struct {
	Machines []*Machine
	opts     Options

	mu sync.Mutex
}

// faultInjector deterministically fails requests (see Options).
type faultInjector struct {
	n         atomic.Int64
	hardFails int64
	every     int64
}

func (f *faultInjector) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := f.n.Add(1)
		if n <= f.hardFails || (f.every > 0 && n%f.every == 0) {
			http.Error(w, "injected fault", http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// Start builds the fleet: one base simulation per distinct workload, then
// a profile database and a listening exposition endpoint per machine.
// Call Close when done.
func Start(opts Options) (*Fleet, error) {
	if opts.Machines <= 0 {
		opts.Machines = 4
	}
	if len(opts.Workloads) == 0 {
		opts.Workloads = []string{"wave5"}
	}
	if opts.Scale <= 0 {
		opts.Scale = 0.1
	}
	if opts.AnomalyFactor <= 0 {
		opts.AnomalyFactor = 3.0
	}
	if opts.FaultHardFails == 0 {
		opts.FaultHardFails = 6
	}
	if opts.FaultEvery == 0 {
		opts.FaultEvery = 3
	}

	tmpls := map[string]*template{}
	for _, wl := range opts.Workloads {
		if _, ok := tmpls[wl]; ok {
			continue
		}
		t, err := buildTemplate(wl, opts.Seed, opts.Scale)
		if err != nil {
			return nil, fmt.Errorf("fleet: base run for %s: %w", wl, err)
		}
		tmpls[wl] = t
	}

	f := &Fleet{opts: opts}
	for i := 0; i < opts.Machines; i++ {
		wl := opts.Workloads[i%len(opts.Workloads)]
		name := fmt.Sprintf("m%02d", i)
		dbDir := filepath.Join(opts.Dir, name)
		db, err := profiledb.Open(dbDir)
		if err != nil {
			f.Close()
			return nil, err
		}
		m := &Machine{
			Name:     name,
			Workload: wl,
			DBDir:    dbDir,
			fleet:    f,
			tmpl:     tmpls[wl],
			db:       db,
			anom:     opts.AnomalyAfter > 0 && i%4 == 1,
		}
		handler := http.Handler(expo.Handler(&expo.Source{
			Machine:  name,
			Workload: wl,
			DBDir:    dbDir,
			SymbolAt: symbolizer(tmpls[wl].loader),
		}))
		if i == opts.FaultMachine {
			handler = (&faultInjector{
				hardFails: int64(opts.FaultHardFails),
				every:     int64(opts.FaultEvery),
			}).wrap(handler)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, err
		}
		m.lis = lis
		m.URL = "http://" + lis.Addr().String()
		m.srv = &http.Server{Handler: handler}
		go m.srv.Serve(lis)
		f.Machines = append(f.Machines, m)
	}
	return f, nil
}

// buildTemplate runs the workload once (exact counts on) and captures its
// aggregate profiles as the machine template.
func buildTemplate(wl string, seed uint64, scale float64) (*template, error) {
	r, err := dcpi.Run(dcpi.Config{
		Workload:     wl,
		Mode:         sim.ModeDefault,
		Seed:         seed,
		Scale:        scale,
		CollectExact: true,
	})
	if err != nil {
		return nil, err
	}
	t := &template{
		workload: wl,
		wall:     r.Wall,
		period:   r.AvgCyclesPeriod(),
		insts:    r.ExactImageInsts(),
		loader:   r.Loader,
	}
	var hotSamples uint64
	for _, p := range r.Profiles() {
		if strings.Contains(p.ImagePath, "#") {
			continue // per-PID duplicates of the aggregate
		}
		pt := profileTemplate{image: p.ImagePath, event: p.Event}
		offs := make([]uint64, 0, len(p.Counts))
		for off := range p.Counts {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		var total uint64
		for _, off := range offs {
			pt.offsets = append(pt.offsets, off)
			pt.counts = append(pt.counts, p.Counts[off])
			total += p.Counts[off]
		}
		t.profiles = append(t.profiles, pt)
		if p.Event == sim.EvCycles && total > hotSamples && p.ImagePath != "/vmunix" {
			hotSamples = total
			t.hotImage = p.ImagePath
		}
	}
	if len(t.profiles) == 0 {
		return nil, fmt.Errorf("base run of %s produced no profiles", wl)
	}
	return t, nil
}

// symbolizer adapts a loader to expo.Source.SymbolAt.
func symbolizer(l *loader.Loader) func(image string, off uint64) (string, bool) {
	if l == nil {
		return nil
	}
	return func(image string, off uint64) (string, bool) {
		im, ok := l.ImageByPath(image)
		if !ok {
			return "", false
		}
		sym, ok := im.SymbolAt(off)
		if !ok {
			return "", false
		}
		return sym.Name, true
	}
}

// jitter returns the deterministic per-(machine, epoch, image, event)
// scale factor in [0.85, 1.15).
func (f *Fleet) jitter(machine string, epoch int, image string, ev sim.Event) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%s|%d", f.opts.Seed, machine, epoch, image, ev)
	return 0.85 + 0.3*float64(h.Sum64()%10000)/10000
}

func scaleCount(n uint64, factor float64) uint64 {
	return uint64(math.Round(float64(n) * factor))
}

// AdvanceEpoch appends one sealed epoch to every machine: perturbed
// profiles, then the metadata seal, then a fresh (unsealed) epoch for the
// next round — the same write-meta-last protocol dcpid follows.
func (f *Fleet) AdvanceEpoch() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.Machines {
		m.epoch++
		insts := make(map[string]uint64, len(m.tmpl.insts))
		for _, pt := range m.tmpl.profiles {
			factor := f.jitter(m.Name, m.epoch, pt.image, pt.event)
			if m.anom && pt.image == f.anomalyImage(m.tmpl) && m.epoch > f.opts.AnomalyAfter {
				factor *= f.opts.AnomalyFactor
			}
			p := profiledb.NewProfile(pt.image, pt.event)
			for i, off := range pt.offsets {
				if c := scaleCount(pt.counts[i], factor); c > 0 {
					p.Add(off, c)
				}
			}
			if p.Total() == 0 {
				continue
			}
			if err := m.db.Update(p); err != nil {
				return fmt.Errorf("fleet: %s epoch %d: %w", m.Name, m.epoch, err)
			}
		}
		for image, n := range m.tmpl.insts {
			// Executed instructions jitter with the cycles profile's factor
			// but are never inflated by the anomaly — that is what makes
			// the anomaly a CPI regression rather than just more work.
			insts[image] = scaleCount(n, f.jitter(m.Name, m.epoch, image, sim.EvCycles))
		}
		if err := m.db.WriteMeta(profiledb.Meta{
			Workload:     m.Workload,
			Mode:         sim.ModeDefault.String(),
			CyclesPeriod: m.tmpl.period,
			WallCycles:   m.tmpl.wall,
			Seed:         f.opts.Seed,
			ImageInsts:   insts,
		}); err != nil {
			return fmt.Errorf("fleet: %s epoch %d meta: %w", m.Name, m.epoch, err)
		}
		if err := m.db.NewEpoch(); err != nil {
			return err
		}
	}
	return nil
}

// AdvanceEpochs appends n sealed epochs to every machine.
func (f *Fleet) AdvanceEpochs(n int) error {
	for i := 0; i < n; i++ {
		if err := f.AdvanceEpoch(); err != nil {
			return err
		}
	}
	return nil
}

// anomalyImage resolves the configured (or default) anomaly target.
func (f *Fleet) anomalyImage(t *template) string {
	if f.opts.AnomalyImage != "" {
		return f.opts.AnomalyImage
	}
	return t.hotImage
}

// AnomalyImage returns the image the anomaly targets on the first
// anomalous machine (the demo's query subject); with no anomaly
// configured it falls back to the first machine's hottest image.
func (f *Fleet) AnomalyImage() string {
	if len(f.Machines) == 0 {
		return f.opts.AnomalyImage
	}
	for _, m := range f.Machines {
		if m.anom {
			return f.anomalyImage(m.tmpl)
		}
	}
	return f.anomalyImage(f.Machines[0].tmpl)
}

// Epoch returns the number of sealed epochs every machine has.
func (f *Fleet) Epoch() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.Machines) == 0 {
		return 0
	}
	return f.Machines[0].epoch
}

// Close shuts every endpoint down.
func (f *Fleet) Close() {
	for _, m := range f.Machines {
		if m.srv != nil {
			m.srv.Close()
		}
	}
}
