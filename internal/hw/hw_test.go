package hw

import (
	"strings"
	"testing"
)

func TestZeroValueIsDefault(t *testing.T) {
	var c Config
	if !c.IsDefault() {
		t.Fatal("zero Config should describe the default machine")
	}
	if got := c.String(); got != "" {
		t.Fatalf("default String() = %q, want \"\"", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("zero Config should validate: %v", err)
	}
	if c.Resolved() != Default() {
		t.Fatal("Resolved() of zero Config != Default()")
	}
}

// TestDefaultMatchesHistoricalMachine pins the default values to the numbers
// that were hardcoded in internal/sim/cpu.go before this package existed.
// Changing any of them silently changes every default simulation.
func TestDefaultMatchesHistoricalMachine(t *testing.T) {
	d := Default()
	if d.ICache != (Geometry{Size: 8 << 10, LineSize: 32, Assoc: 1}) {
		t.Errorf("icache = %+v", d.ICache)
	}
	if d.DCache != (Geometry{Size: 8 << 10, LineSize: 32, Assoc: 1}) {
		t.Errorf("dcache = %+v", d.DCache)
	}
	if d.Board != (Geometry{Size: 2 << 20, LineSize: 64, Assoc: 1}) {
		t.Errorf("board = %+v", d.Board)
	}
	if d.ITBEntries != 48 || d.DTBEntries != 64 {
		t.Errorf("tlb entries = %d/%d, want 48/64", d.ITBEntries, d.DTBEntries)
	}
	if d.WBEntries != 6 || d.WBDrainCycles != 120 {
		t.Errorf("wb = %d/%d, want 6/120", d.WBEntries, d.WBDrainCycles)
	}
	if d.PredEntries != 512 || d.IssueWidth != 2 {
		t.Errorf("pred/issue = %d/%d, want 512/2", d.PredEntries, d.IssueWidth)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"icache=16K/32/1",
		"icache=16K/32/2,dcache=16K/32/2",
		"board=4M/64/2",
		"itb=24,dtb=32",
		"wb=6/0",
		"wb=12/120",
		"pred=2048",
		"issue=1",
		"issue=4",
		"memlat=160",
		"l2lat=6,memlat=40",
		"icache=8K/64/1,loadlat=3,tlbmiss=0",
	}
	for _, spec := range specs {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		s := c.String()
		c2, err := Parse(s)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s, err)
		}
		if c != c2 {
			t.Errorf("Parse(%q) -> %q does not round-trip: %+v vs %+v", spec, s, c, c2)
		}
		if s2 := c2.String(); s2 != s {
			t.Errorf("String not canonical for %q: %q then %q", spec, s, s2)
		}
	}
}

// TestParseCanonicalizesDefaultSpellings checks that explicitly spelling out
// default values parses to the zero Config, so equal machines are equal Go
// values regardless of how they were written.
func TestParseCanonicalizesDefaultSpellings(t *testing.T) {
	for _, spec := range []string{
		"icache=8K/32/1",
		"icache=8192/32/1",
		"itb=48,dtb=64,wb=6/120,pred=512,issue=2",
		"memlat=80,l2lat=12",
	} {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if c != (Config{}) {
			t.Errorf("Parse(%q) = %+v, want zero Config", spec, c)
		}
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	for _, spec := range []string{
		"icache=12K/32/1",          // non-power-of-two size
		"icache=8K/24/1",           // non-power-of-two line
		"icache=8K/32/3",           // non-power-of-two assoc
		"icache=1K/32/64",          // assoc (64) > sets (0.5 -> size < one set)
		"dcache=2K/32/64",          // assoc 64 > sets 1
		"board=512M/64/1",          // over the size cap
		"icache=8K/4/1",            // line below minimum
		"itb=0",                    // zero TLB
		"dtb=-1",                   // negative
		"wb=0/120",                 // zero entries
		"wb=6",                     // missing drain
		"wb=6/-5",                  // negative drain
		"pred=100",                 // not a power of two
		"issue=0",                  // below minimum
		"issue=5",                  // above MaxIssueWidth
		"loadlat=0",                // zero result latency
		"memlat=0",                 // zero fill latency
		"mulbusy=0",                // zero occupancy
		"intlat=9999999999",        // over the cycle cap
		"bogus=1",                  // unknown key
		"icache",                   // not key=value
		"icache=8K/32",             // malformed geometry
		"icache=8K/32/1/1",         // malformed geometry
		"tlbmiss=notanumber",       // not a number
		"icache=99999999999M/32/1", // size overflow
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseLastKeyWins(t *testing.T) {
	c, err := Parse("itb=24,itb=12")
	if err != nil {
		t.Fatal(err)
	}
	if c.ITBEntries != 12 {
		t.Fatalf("itb = %d, want 12 (last key wins)", c.ITBEntries)
	}
}

func TestStringOrderIsStable(t *testing.T) {
	// Fields must render in canonical order regardless of spec order.
	a, err := Parse("memlat=160,icache=16K/32/1,issue=4")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("issue=4,memlat=160,icache=16K/32/1")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("order-dependent String: %q vs %q", a.String(), b.String())
	}
	if want := "icache=16K/32/1,issue=4,memlat=160"; a.String() != want {
		t.Fatalf("String = %q, want %q", a.String(), want)
	}
}

func TestGeometryCacheConfig(t *testing.T) {
	g := Geometry{Size: 16 << 10, LineSize: 64, Assoc: 2}
	cc := g.CacheConfig("dcache")
	if cc.Name != "dcache" || cc.Size != 16<<10 || cc.LineSize != 64 || cc.Assoc != 2 {
		t.Fatalf("CacheConfig = %+v", cc)
	}
	if g.Sets() != 128 {
		t.Fatalf("Sets = %d, want 128", g.Sets())
	}
}

func TestFormatSize(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want string
	}{
		{8 << 10, "8K"}, {2 << 20, "2M"}, {32, "32"}, {1536, "1536"}, {3 << 10, "3K"},
	} {
		if got := formatSize(tc.n); got != tc.want {
			t.Errorf("formatSize(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
	if !strings.Contains((Geometry{Size: 2 << 20, LineSize: 64, Assoc: 1}).format(), "2M") {
		t.Error("geometry format should use binary suffixes")
	}
}
