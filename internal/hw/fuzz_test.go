package hw

import "testing"

// FuzzParseHWConfig checks the parser's involution property: any spec that
// parses must canonicalize (String) to a form that re-parses to the same
// value and is itself a fixed point of String. Invalid geometry must be
// rejected, never panic — the spec reaches Parse from the dcpiwhatif command
// line and from snapshot headers.
func FuzzParseHWConfig(f *testing.F) {
	f.Add("")
	f.Add("icache=16K/32/2")
	f.Add("icache=16K/32/2,dcache=16K/32/2,board=4M/64/1")
	f.Add("itb=24,dtb=32,wb=6/0,pred=2048,issue=4")
	f.Add("memlat=160,l2lat=6,tlbmiss=0,mispredict=10,takenbubble=2")
	f.Add("intlat=2,cmovlat=3,loadlat=4,mullat=9,fplat=5,divlat=20,mulbusy=2,divbusy=2")
	f.Add("icache=8192/32/1") // default spelled in bytes
	f.Add("wb=6/120,issue=2") // default spelled explicitly
	f.Add("icache=12K/32/1")  // invalid: non-power-of-two size
	f.Add("dcache=2K/32/64")  // invalid: assoc > sets
	f.Add("loadlat=0")        // invalid: zero latency
	f.Add("issue=9")
	f.Add("wb=6")
	f.Add(" icache = 8K/32/1 ")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := Parse(spec)
		if err != nil {
			return // invalid specs must only error, never panic
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid config: %v", spec, verr)
		}
		s := c.String()
		c2, err := Parse(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", s, spec, err)
		}
		if c2 != c {
			t.Fatalf("Parse(%q) -> %q -> %+v, want %+v", spec, s, c2, c)
		}
		if s2 := c2.String(); s2 != s {
			t.Fatalf("String not a fixed point for %q: %q then %q", spec, s, s2)
		}
		if (c == Config{}) != (s == "") {
			t.Fatalf("zero-value/empty-string correspondence broken for %q: c=%+v s=%q", spec, c, s)
		}
	})
}
