// Package hw promotes the simulated machine's hardware description to a
// first-class serializable value. Historically the cache geometries, TLB
// capacities, write-buffer shape, predictor size, and issue width were
// compile-time constants in internal/sim; the what-if engine (cmd/dcpiwhatif)
// needs to perturb them per run, cache runs under a content key that includes
// the perturbation, and round-trip the description through snapshots.
//
// Config follows the daemon.FaultPlan convention: the zero value means "the
// default 21164 machine" and renders as the empty string, so default-config
// run keys — and therefore every pre-existing run-cache entry — are
// byte-identical to what they were before this package existed. Parse and
// String are canonical inverses: Parse(c.String()) == c for any valid Config,
// and any spec that resolves to the default machine parses to the zero value.
package hw

import (
	"fmt"
	"strconv"
	"strings"

	"dcpi/internal/mem"
	"dcpi/internal/pipeline"
)

// MaxIssueWidth is the widest issue group the simulator supports; the CPU's
// preallocated group buffers are sized by it.
const MaxIssueWidth = 4

// Geometry describes one cache level: total size, line size, associativity.
type Geometry struct {
	Size     int // total bytes (power of two)
	LineSize int // bytes per line (power of two)
	Assoc    int // ways (power of two); 1 = direct mapped
}

// Sets returns the number of sets the geometry implies.
func (g Geometry) Sets() int {
	if g.LineSize <= 0 || g.Assoc <= 0 {
		return 0
	}
	return g.Size / (g.LineSize * g.Assoc)
}

// CacheConfig converts the geometry to the mem package's cache configuration.
func (g Geometry) CacheConfig(name string) mem.CacheConfig {
	return mem.CacheConfig{Name: name, Size: g.Size, LineSize: g.LineSize, Assoc: g.Assoc}
}

func (g Geometry) format() string {
	return fmt.Sprintf("%s/%d/%d", formatSize(g.Size), g.LineSize, g.Assoc)
}

// Config is the full hardware description: the pipeline timing model plus
// the memory-system structure. The zero value means the 21164 defaults
// (Default); use Resolved before reading fields.
type Config struct {
	// Model holds issue/latency timing (see pipeline.Model). A zero Model
	// inside an otherwise non-zero Config is invalid — Parse always fills
	// it in from the defaults.
	Model pipeline.Model

	ICache Geometry
	DCache Geometry
	Board  Geometry // board-level (L3) cache

	ITBEntries int // instruction TLB capacity (fully associative)
	DTBEntries int // data TLB capacity (fully associative)

	WBEntries     int   // write-buffer entries
	WBDrainCycles int64 // per-line retire time; 0 = stores retire instantly

	PredEntries int // branch-predictor table entries (power of two)
	IssueWidth  int // instructions per issue group, 1..MaxIssueWidth
}

// Default returns the 21164-like machine the simulator has always modeled
// (DESIGN.md §3): 8K direct-mapped split L1s with 32-byte lines, a 2M board
// cache, 48/64-entry TLBs, a six-entry write buffer draining one 32-byte
// line per 120 cycles, a 512-entry predictor, and dual issue.
func Default() Config {
	return Config{
		Model:         pipeline.Default(),
		ICache:        Geometry{Size: 8 << 10, LineSize: 32, Assoc: 1},
		DCache:        Geometry{Size: 8 << 10, LineSize: 32, Assoc: 1},
		Board:         Geometry{Size: 2 << 20, LineSize: 64, Assoc: 1},
		ITBEntries:    48,
		DTBEntries:    64,
		WBEntries:     6,
		WBDrainCycles: 120,
		PredEntries:   512,
		IssueWidth:    2,
	}
}

// Resolved maps the zero value to Default and returns any other config
// unchanged. Non-zero configs must be fully specified (Parse guarantees
// this; hand-built configs should start from Default()).
func (c Config) Resolved() Config {
	if c == (Config{}) {
		return Default()
	}
	return c
}

// IsDefault reports whether the config describes the default machine.
func (c Config) IsDefault() bool { return c.Resolved() == Default() }

// Limits that keep parsed configs simulable: fuzzed or user-supplied specs
// must not be able to demand terabyte caches or million-cycle loads.
const (
	maxCacheSize  = 1 << 28 // 256 MB
	maxLineSize   = 1 << 10
	minLineSize   = 8
	maxTLBEntries = 1 << 16
	maxWBEntries  = 1 << 12
	maxCycles     = 1 << 20
)

func validGeometry(name string, g Geometry) error {
	switch {
	case g.Size <= 0 || g.Size&(g.Size-1) != 0 || g.Size > maxCacheSize:
		return fmt.Errorf("hw: %s size %d not a power of two in [%d, %d]",
			name, g.Size, minLineSize, maxCacheSize)
	case g.LineSize < minLineSize || g.LineSize > maxLineSize || g.LineSize&(g.LineSize-1) != 0:
		return fmt.Errorf("hw: %s line size %d not a power of two in [%d, %d]",
			name, g.LineSize, minLineSize, maxLineSize)
	case g.Assoc <= 0 || g.Assoc&(g.Assoc-1) != 0:
		return fmt.Errorf("hw: %s associativity %d not a power of two", name, g.Assoc)
	case g.Size < g.LineSize*g.Assoc:
		return fmt.Errorf("hw: %s size %d smaller than one %d-way set of %dB lines",
			name, g.Size, g.Assoc, g.LineSize)
	case g.Assoc > g.Sets():
		return fmt.Errorf("hw: %s associativity %d exceeds %d sets", name, g.Assoc, g.Sets())
	}
	return nil
}

func validCycles(name string, v int64, min int64) error {
	if v < min || v > maxCycles {
		return fmt.Errorf("hw: %s %d outside [%d, %d]", name, v, min, maxCycles)
	}
	return nil
}

// Validate checks the resolved config for consistency: power-of-two
// geometries with assoc <= sets, positive result latencies, bounded
// penalties, and an issue width the simulator supports.
func (c Config) Validate() error {
	r := c.Resolved()
	if err := validGeometry("icache", r.ICache); err != nil {
		return err
	}
	if err := validGeometry("dcache", r.DCache); err != nil {
		return err
	}
	if err := validGeometry("board", r.Board); err != nil {
		return err
	}
	if r.ITBEntries < 1 || r.ITBEntries > maxTLBEntries {
		return fmt.Errorf("hw: itb entries %d outside [1, %d]", r.ITBEntries, maxTLBEntries)
	}
	if r.DTBEntries < 1 || r.DTBEntries > maxTLBEntries {
		return fmt.Errorf("hw: dtb entries %d outside [1, %d]", r.DTBEntries, maxTLBEntries)
	}
	if r.WBEntries < 1 || r.WBEntries > maxWBEntries {
		return fmt.Errorf("hw: wb entries %d outside [1, %d]", r.WBEntries, maxWBEntries)
	}
	if err := validCycles("wb drain", r.WBDrainCycles, 0); err != nil {
		return err
	}
	if r.PredEntries < 1 || r.PredEntries > 1<<20 || r.PredEntries&(r.PredEntries-1) != 0 {
		return fmt.Errorf("hw: predictor entries %d not a power of two in [1, %d]", r.PredEntries, 1<<20)
	}
	if r.IssueWidth < 1 || r.IssueWidth > MaxIssueWidth {
		return fmt.Errorf("hw: issue width %d outside [1, %d]", r.IssueWidth, MaxIssueWidth)
	}
	m := r.Model
	for _, f := range []struct {
		name string
		v    int64
		min  int64
	}{
		{"intlat", m.IntLat, 1},
		{"cmovlat", m.CMovLat, 1},
		{"loadlat", m.LoadLat, 1},
		{"mullat", m.MulLat, 1},
		{"fplat", m.FPLat, 1},
		{"divlat", m.DivLat, 1},
		{"mulbusy", m.MulBusy, 1},
		{"divbusy", m.DivBusy, 1},
		{"l2lat", m.L2Lat, 1},
		{"memlat", m.MemLat, 1},
		{"tlbmiss", m.TLBMissPenalty, 0},
		{"mispredict", m.MispredictPenalty, 0},
		{"takenbubble", m.TakenBranchBubble, 0},
	} {
		if err := validCycles(f.name, f.v, f.min); err != nil {
			return err
		}
	}
	return nil
}

// String renders the config in the canonical form Parse accepts: only the
// fields that differ from the default machine, in a fixed order, so equal
// configs render identically and the default renders as "". The rendering
// joins runner content keys, so it must stay byte-stable.
func (c Config) String() string {
	r, d := c.Resolved(), Default()
	var parts []string
	add := func(key, val string) { parts = append(parts, key+"="+val) }
	if r.ICache != d.ICache {
		add("icache", r.ICache.format())
	}
	if r.DCache != d.DCache {
		add("dcache", r.DCache.format())
	}
	if r.Board != d.Board {
		add("board", r.Board.format())
	}
	if r.ITBEntries != d.ITBEntries {
		add("itb", strconv.Itoa(r.ITBEntries))
	}
	if r.DTBEntries != d.DTBEntries {
		add("dtb", strconv.Itoa(r.DTBEntries))
	}
	if r.WBEntries != d.WBEntries || r.WBDrainCycles != d.WBDrainCycles {
		add("wb", fmt.Sprintf("%d/%d", r.WBEntries, r.WBDrainCycles))
	}
	if r.PredEntries != d.PredEntries {
		add("pred", strconv.Itoa(r.PredEntries))
	}
	if r.IssueWidth != d.IssueWidth {
		add("issue", strconv.Itoa(r.IssueWidth))
	}
	for _, f := range []struct {
		key  string
		v, d int64
	}{
		{"intlat", r.Model.IntLat, d.Model.IntLat},
		{"cmovlat", r.Model.CMovLat, d.Model.CMovLat},
		{"loadlat", r.Model.LoadLat, d.Model.LoadLat},
		{"mullat", r.Model.MulLat, d.Model.MulLat},
		{"fplat", r.Model.FPLat, d.Model.FPLat},
		{"divlat", r.Model.DivLat, d.Model.DivLat},
		{"mulbusy", r.Model.MulBusy, d.Model.MulBusy},
		{"divbusy", r.Model.DivBusy, d.Model.DivBusy},
		{"l2lat", r.Model.L2Lat, d.Model.L2Lat},
		{"memlat", r.Model.MemLat, d.Model.MemLat},
		{"tlbmiss", r.Model.TLBMissPenalty, d.Model.TLBMissPenalty},
		{"mispredict", r.Model.MispredictPenalty, d.Model.MispredictPenalty},
		{"takenbubble", r.Model.TakenBranchBubble, d.Model.TakenBranchBubble},
	} {
		if f.v != f.d {
			add(f.key, strconv.FormatInt(f.v, 10))
		}
	}
	return strings.Join(parts, ",")
}

// Parse parses a comma-separated hardware spec. Unnamed fields keep their
// default (21164) values, so "icache=16K/32/1" is a complete machine. The
// accepted keys, in canonical order:
//
//	icache=SIZE/LINE/ASSOC   e.g. icache=16K/32/2 (sizes take K/M suffixes)
//	dcache=SIZE/LINE/ASSOC
//	board=SIZE/LINE/ASSOC
//	itb=N                    instruction-TLB entries
//	dtb=N                    data-TLB entries
//	wb=ENTRIES/DRAIN         write buffer shape; DRAIN=0 retires instantly
//	pred=N                   branch-predictor entries (power of two)
//	issue=N                  issue width, 1..4
//	intlat, cmovlat, loadlat, mullat, fplat, divlat   result latencies
//	mulbusy, divbusy         functional-unit occupancy
//	l2lat, memlat            board-cache / memory fill latencies
//	tlbmiss, mispredict, takenbubble                  dynamic penalties
//
// Size suffixes are binary (K=1024, M=1048576). A spec equal to the default
// machine parses to the zero Config, so value equality works across
// spellings of the same machine.
func Parse(spec string) (Config, error) {
	c := Default()
	if strings.TrimSpace(spec) == "" {
		return Config{}, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("hw: %q is not key=value", field)
		}
		var err error
		switch key {
		case "icache":
			c.ICache, err = parseGeometry(val)
		case "dcache":
			c.DCache, err = parseGeometry(val)
		case "board":
			c.Board, err = parseGeometry(val)
		case "itb":
			c.ITBEntries, err = parseInt(val)
		case "dtb":
			c.DTBEntries, err = parseInt(val)
		case "wb":
			ents, drain, ok := strings.Cut(val, "/")
			if !ok {
				return Config{}, fmt.Errorf("hw: wb wants ENTRIES/DRAIN, got %q", val)
			}
			if c.WBEntries, err = parseInt(ents); err == nil {
				c.WBDrainCycles, err = parseInt64(drain)
			}
		case "pred":
			c.PredEntries, err = parseInt(val)
		case "issue":
			c.IssueWidth, err = parseInt(val)
		case "intlat":
			c.Model.IntLat, err = parseInt64(val)
		case "cmovlat":
			c.Model.CMovLat, err = parseInt64(val)
		case "loadlat":
			c.Model.LoadLat, err = parseInt64(val)
		case "mullat":
			c.Model.MulLat, err = parseInt64(val)
		case "fplat":
			c.Model.FPLat, err = parseInt64(val)
		case "divlat":
			c.Model.DivLat, err = parseInt64(val)
		case "mulbusy":
			c.Model.MulBusy, err = parseInt64(val)
		case "divbusy":
			c.Model.DivBusy, err = parseInt64(val)
		case "l2lat":
			c.Model.L2Lat, err = parseInt64(val)
		case "memlat":
			c.Model.MemLat, err = parseInt64(val)
		case "tlbmiss":
			c.Model.TLBMissPenalty, err = parseInt64(val)
		case "mispredict":
			c.Model.MispredictPenalty, err = parseInt64(val)
		case "takenbubble":
			c.Model.TakenBranchBubble, err = parseInt64(val)
		default:
			return Config{}, fmt.Errorf("hw: unknown key %q", key)
		}
		if err != nil {
			return Config{}, err
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	if c == Default() {
		return Config{}, nil
	}
	return c, nil
}

func parseGeometry(val string) (Geometry, error) {
	f := strings.Split(val, "/")
	if len(f) != 3 {
		return Geometry{}, fmt.Errorf("hw: geometry wants SIZE/LINE/ASSOC, got %q", val)
	}
	size, err := parseSize(f[0])
	if err != nil {
		return Geometry{}, err
	}
	line, err := parseInt(f[1])
	if err != nil {
		return Geometry{}, err
	}
	assoc, err := parseInt(f[2])
	if err != nil {
		return Geometry{}, err
	}
	return Geometry{Size: size, LineSize: line, Assoc: assoc}, nil
}

// formatSize renders a byte count with the largest exact binary suffix.
func formatSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return strconv.Itoa(n>>20) + "M"
	case n >= 1<<10 && n%(1<<10) == 0:
		return strconv.Itoa(n>>10) + "K"
	}
	return strconv.Itoa(n)
}

// parseSize parses a byte count with an optional binary K/M suffix.
func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 || n > maxCacheSize/int64(mult) {
		return 0, fmt.Errorf("hw: bad size %q", s)
	}
	return int(n) * mult, nil
}

func parseInt(s string) (int, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 || n > 1<<30 {
		return 0, fmt.Errorf("hw: bad count %q", s)
	}
	return int(n), nil
}

func parseInt64(s string) (int64, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 || n > 1<<30 {
		return 0, fmt.Errorf("hw: bad cycle count %q", s)
	}
	return n, nil
}
