package runcache

// Shard archives: the interchange format between `dcpieval -shard i/N`
// workers and the `-merge-shards` pass. An archive is a flat, append-only
// sequence of cache entries — each framed and CRC-protected exactly like
// an on-disk cache entry — prefixed by a header binding the file to a
// version stamp. Merging N archives therefore reuses the same integrity
// checks as the persistent cache: a corrupt or stale entry surfaces as an
// error at merge time instead of silently skewing the merged tables.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"dcpi/internal/atomicio"
)

// Entry is one run result in a shard archive.
type Entry struct {
	Key  string
	Blob []byte
}

// WriteArchive atomically writes entries (sorted by key for reproducible
// bytes) to path, bound to stamp.
func WriteArchive(path, stamp string, entries []Entry) error {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	return atomicio.WriteFile(path, func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		if _, err := bw.WriteString(archiveMagic); err != nil {
			return err
		}
		if err := atomicio.WriteUvarint(bw, formatVersion); err != nil {
			return err
		}
		if err := atomicio.WriteUvarint(bw, uint64(len(stamp))); err != nil {
			return err
		}
		if _, err := bw.WriteString(stamp); err != nil {
			return err
		}
		if err := atomicio.WriteUvarint(bw, uint64(len(sorted))); err != nil {
			return err
		}
		for _, e := range sorted {
			var eb bytes.Buffer
			if err := encodeEntry(&eb, stamp, e.Key, e.Blob); err != nil {
				return err
			}
			if err := atomicio.WriteUvarint(bw, uint64(eb.Len())); err != nil {
				return err
			}
			if _, err := bw.Write(eb.Bytes()); err != nil {
				return err
			}
		}
		return bw.Flush()
	})
}

// ReadArchive reads a shard archive, verifying every entry's framing and
// CRC. wantStamp guards against merging shards produced by a different
// simulator or snapshot generation; pass "" to accept any stamp (the
// archive's own stamp is still returned and each entry must match it).
func ReadArchive(path, wantStamp string) (stamp string, entries []Entry, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if len(raw) < len(archiveMagic) || string(raw[:len(archiveMagic)]) != archiveMagic {
		return "", nil, fmt.Errorf("runcache: %s: not a shard archive", path)
	}
	r := &sliceReader{b: raw[len(archiveMagic):]}
	if v := r.uvarint(); r.err == nil && v != formatVersion {
		return "", nil, fmt.Errorf("runcache: %s: archive format version %d, want %d", path, v, formatVersion)
	}
	stamp = r.str()
	if r.err != nil {
		return "", nil, fmt.Errorf("runcache: %s: %w", path, r.err)
	}
	if wantStamp != "" && stamp != wantStamp {
		return stamp, nil, fmt.Errorf("runcache: %s: stamp %q, want %q (re-run the shard with this binary)", path, stamp, wantStamp)
	}
	n := int(r.uvarint())
	for i := 0; i < n; i++ {
		elen := r.uvarint()
		if r.err != nil {
			break
		}
		if elen > uint64(len(r.b)) {
			r.err = fmt.Errorf("truncated entry %d", i)
			break
		}
		eb := r.b[:elen]
		r.b = r.b[elen:]
		key, blob, derr := decodeArchiveEntry(eb, stamp)
		if derr != nil {
			r.err = fmt.Errorf("entry %d: %w", i, derr)
			break
		}
		entries = append(entries, Entry{Key: key, Blob: blob})
	}
	if r.err == nil && len(r.b) != 0 {
		r.err = fmt.Errorf("%d trailing bytes", len(r.b))
	}
	if r.err != nil {
		return stamp, nil, fmt.Errorf("runcache: %s: %w", path, r.err)
	}
	return stamp, entries, nil
}

// decodeArchiveEntry is decodeEntry without a known key: it verifies CRC,
// magic, version, and stamp, and returns the embedded key and payload.
func decodeArchiveEntry(raw []byte, stamp string) (string, []byte, error) {
	if len(raw) < len(entryMagic)+4 {
		return "", nil, fmt.Errorf("entry too short (%d bytes)", len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return "", nil, fmt.Errorf("CRC mismatch")
	}
	if string(body[:len(entryMagic)]) != entryMagic {
		return "", nil, fmt.Errorf("bad entry magic")
	}
	r := &sliceReader{b: body[len(entryMagic):]}
	if v := r.uvarint(); r.err == nil && v != formatVersion {
		return "", nil, fmt.Errorf("entry format version %d, want %d", v, formatVersion)
	}
	gotStamp := r.str()
	key := r.str()
	blob := r.bytes()
	if r.err != nil {
		return "", nil, r.err
	}
	if gotStamp != stamp {
		return "", nil, fmt.Errorf("entry stamp %q, want %q", gotStamp, stamp)
	}
	if len(r.b) != 0 {
		return "", nil, fmt.Errorf("%d trailing bytes in entry", len(r.b))
	}
	return key, blob, nil
}
