package runcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcpi/internal/obs"
)

const testStamp = "sim-test/snap-1"

func openTest(t *testing.T, opts Options) *Cache {
	t.Helper()
	if opts.Stamp == "" {
		opts.Stamp = testStamp
	}
	c, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := openTest(t, Options{})
	key := "w=gcc|scale=0.1|mode=2"
	payload := []byte("serialized run result")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 put", s)
	}
}

func TestCacheSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir, Options{Stamp: testStamp})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, Options{Stamp: testStamp})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("entry lost across reopen: %q, %v", got, ok)
	}
	if c2.SizeBytes() == 0 {
		t.Error("reopened cache did not recover entry sizes")
	}
}

func TestStampMismatchMisses(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir, Options{Stamp: "sim-1/snap-1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// A new simulator generation addresses different entry files entirely
	// (the stamp is part of the address), so old entries read as misses.
	c2, err := Open(dir, Options{Stamp: "sim-2/snap-1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("k"); ok {
		t.Error("stale-stamp entry served as a hit")
	}
}

func corruptEntry(t *testing.T, c *Cache, key string, mutate func([]byte) []byte) string {
	t.Helper()
	path := c.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTruncatedEntryQuarantined(t *testing.T) {
	c := openTest(t, Options{})
	if err := c.Put("k", bytes.Repeat([]byte("x"), 256)); err != nil {
		t.Fatal(err)
	}
	path := corruptEntry(t, c, "k", func(b []byte) []byte { return b[:len(b)/2] })
	if _, ok := c.Get("k"); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("truncated entry not quarantined: %v", err)
	}
	if s := c.Stats(); s.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", s.Quarantined)
	}
	// The slot is usable again after re-simulation.
	if err := c.Put("k", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get("k"); !ok || string(got) != "fresh" {
		t.Errorf("re-put after quarantine failed: %q, %v", got, ok)
	}
}

func TestBitFlipQuarantined(t *testing.T) {
	c := openTest(t, Options{})
	if err := c.Put("k", bytes.Repeat([]byte("y"), 256)); err != nil {
		t.Fatal(err)
	}
	path := corruptEntry(t, c, "k", func(b []byte) []byte {
		b[len(b)/2] ^= 0x40
		return b
	})
	if _, ok := c.Get("k"); ok {
		t.Fatal("bit-flipped entry served as a hit")
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("bit-flipped entry not quarantined: %v", err)
	}
}

func TestExplicitQuarantine(t *testing.T) {
	c := openTest(t, Options{})
	if err := c.Put("k", []byte("valid framing, bad payload")); err != nil {
		t.Fatal(err)
	}
	c.Quarantine("k")
	if _, ok := c.Get("k"); ok {
		t.Error("quarantined entry served as a hit")
	}
	if _, err := os.Stat(c.entryPath("k") + ".bad"); err != nil {
		t.Errorf("entry not moved aside: %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Entries are ~300 bytes with framing; cap at ~3 entries' worth.
	c, err := Open(dir, Options{Stamp: testStamp, MaxBytes: 1100})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("z"), 256)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := c.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		// Backdate so LRU order is deterministic: k0 oldest.
		mt := base.Add(time.Duration(i) * time.Minute)
		os.Chtimes(c.entryPath(key), mt, mt)
	}
	// Touch k0 via Get: now k1 is the LRU entry.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	if err := c.Put("k3", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Error("LRU entry k1 survived eviction")
	}
	for _, key := range []string{"k0", "k3"} {
		if _, ok := c.Get(key); !ok {
			t.Errorf("recently used entry %s was evicted", key)
		}
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Error("no evictions counted")
	}
	if c.SizeBytes() > 1100 {
		t.Errorf("cache size %d exceeds cap", c.SizeBytes())
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "deadbeef.run.tmp")
	if err := os.WriteFile(tmp, []byte("partial write from a crash"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Stamp: testStamp}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("crashed writer's temp file not swept")
	}
}

func TestPublishMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := openTest(t, Options{Obs: obs.Hooks{Registry: reg}})
	c.Put("k", []byte("v"))
	c.Get("k")
	c.Get("absent")
	c.PublishMetrics()
	if v := reg.Gauge("runcache.hits").Value(); v != 1 {
		t.Errorf("runcache.hits = %v, want 1", v)
	}
	if v := reg.Gauge("runcache.misses").Value(); v != 1 {
		t.Errorf("runcache.misses = %v, want 1", v)
	}
	if v := reg.Gauge("runcache.bytes").Value(); v <= 0 {
		t.Errorf("runcache.bytes = %v, want > 0", v)
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.bin")
	entries := []Entry{
		{Key: "w=b|x=2", Blob: []byte("second")},
		{Key: "w=a|x=1", Blob: []byte("first")},
	}
	if err := WriteArchive(path, testStamp, entries); err != nil {
		t.Fatal(err)
	}
	stamp, got, err := ReadArchive(path, testStamp)
	if err != nil {
		t.Fatal(err)
	}
	if stamp != testStamp {
		t.Errorf("stamp = %q, want %q", stamp, testStamp)
	}
	// Entries come back sorted by key.
	if len(got) != 2 || got[0].Key != "w=a|x=1" || string(got[0].Blob) != "first" ||
		got[1].Key != "w=b|x=2" || string(got[1].Blob) != "second" {
		t.Errorf("entries = %+v", got)
	}
}

func TestArchiveStampMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.bin")
	if err := WriteArchive(path, "sim-old/snap-1", []Entry{{Key: "k", Blob: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadArchive(path, "sim-new/snap-1"); err == nil ||
		!strings.Contains(err.Error(), "stamp") {
		t.Errorf("mismatched stamp not rejected: %v", err)
	}
}

func TestArchiveCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.bin")
	if err := WriteArchive(path, testStamp, []Entry{{Key: "k", Blob: bytes.Repeat([]byte("v"), 128)}}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-40] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadArchive(path, testStamp); err == nil {
		t.Error("corrupt archive read without error")
	}
}
