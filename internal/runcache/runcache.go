// Package runcache is the persistent tier of the evaluation run cache: a
// content-addressed, crash-safe store of serialized run results that
// survives across dcpieval invocations. Entries are keyed by the run's
// content key (runner.Key — every semantic Config field) plus a version
// stamp (dcpi.CacheStamp — simulator generation and snapshot layout), so a
// warm cache replays exactly the runs an identical binary would simulate
// and goes cold wholesale whenever either the simulator's semantics or the
// blob encoding change.
//
// Durability and safety come from three mechanisms:
//
//   - Writes go through atomicio.WriteFile (temp+fsync+rename), the same
//     protocol profiledb uses, so a crash mid-Put leaves the old entry (or
//     no entry) — never a torn one.
//   - Every entry carries a magic number, format version, stamp, its own
//     key, and a CRC32 of the payload. Get verifies all five; any mismatch
//     — truncation, bit rot, a hash collision between keys, a stale stamp —
//     quarantines the file by renaming it to ".bad" and reports a miss, so
//     corruption can cost a re-simulation but can never produce wrong
//     output.
//   - The cache is size-capped: after each Put, least-recently-used
//     entries (by file mtime; Get touches entries on hit) are evicted
//     until the total is back under MaxBytes.
//
// The same framing, minus the filesystem, backs shard archives: a shard
// file written by `dcpieval -shard i/N` is a sequence of (key, blob)
// entries that `-merge-shards` folds back into one result set.
package runcache

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dcpi/internal/atomicio"
	"dcpi/internal/obs"
)

const (
	entryMagic   = "DCPIRUNC"
	archiveMagic = "DCPISHRD"
	// formatVersion stamps the entry/archive framing itself (magic, header
	// layout, CRC placement) — independent of the payload's own version.
	formatVersion = 1
	// DefaultMaxBytes caps the cache at 2 GiB unless overridden.
	DefaultMaxBytes = 2 << 30
)

// Options configures Open.
type Options struct {
	// MaxBytes caps the total size of cache entries; 0 means
	// DefaultMaxBytes, negative disables eviction.
	MaxBytes int64
	// Stamp is the version stamp entries are bound to (dcpi.CacheStamp()).
	// Entries written under any other stamp read as misses.
	Stamp string
	// Obs receives hit/miss/eviction/size gauges via PublishMetrics.
	Obs obs.Hooks
}

// Stats counts cache traffic since Open.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Puts        uint64
	Evictions   uint64
	Quarantined uint64
}

// Cache is a directory of persisted run results. Safe for concurrent use.
type Cache struct {
	dir      string
	maxBytes int64
	stamp    string
	hooks    obs.Hooks

	mu    sync.Mutex
	stats Stats
	bytes int64 // total size of *.run entries, maintained incrementally
}

// Open creates dir if needed, sweeps leftovers from crashed writers
// (".tmp" files), and returns a cache bound to opts.Stamp.
func Open(dir string, opts Options) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Cache{dir: dir, maxBytes: opts.MaxBytes, stamp: opts.Stamp, hooks: opts.Obs}
	if c.maxBytes == 0 {
		c.maxBytes = DefaultMaxBytes
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".tmp":
			os.Remove(filepath.Join(dir, e.Name()))
		case ".run":
			if info, err := e.Info(); err == nil {
				c.bytes += info.Size()
			}
		}
	}
	return c, nil
}

// Path returns the cache directory.
func (c *Cache) Path() string { return c.dir }

// entryPath addresses a key: a truncated sha256 of stamp+key keeps names
// filesystem-safe regardless of what the key contains. Collisions are
// harmless — the full key is stored inside the entry and verified on read.
func (c *Cache) entryPath(key string) string {
	sum := sha256.Sum256([]byte(c.stamp + "\x00" + key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:12])+".run")
}

// Get returns the payload stored under key, or ok=false on any miss —
// absent, stale stamp, or corrupt (corrupt entries are quarantined).
func (c *Cache) Get(key string) ([]byte, bool) {
	path := c.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		c.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	payload, err := decodeEntry(raw, c.stamp, key)
	if err != nil {
		c.quarantine(path)
		c.count(func(s *Stats) { s.Misses++; s.Quarantined++ })
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // refresh LRU position; best-effort
	c.count(func(s *Stats) { s.Hits++ })
	return payload, true
}

// Put stores payload under key, evicting least-recently-used entries if
// the cache exceeds its size cap afterwards.
func (c *Cache) Put(key string, payload []byte) error {
	path := c.entryPath(key)
	var prev int64
	if info, err := os.Stat(path); err == nil {
		prev = info.Size()
	}
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return encodeEntry(w, c.stamp, key, payload)
	})
	if err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Puts++
	c.bytes += info.Size() - prev
	c.mu.Unlock()
	c.evict()
	c.publish()
	return nil
}

// Quarantine moves the entry for key aside as ".bad" (used by callers
// whose payload decode fails after a framing-valid Get).
func (c *Cache) Quarantine(key string) {
	c.quarantine(c.entryPath(key))
	c.count(func(s *Stats) { s.Quarantined++ })
}

func (c *Cache) quarantine(path string) {
	if err := os.Rename(path, path+".bad"); err != nil {
		os.Remove(path) // rename failed (e.g. .bad exists): drop instead
	}
	if info, err := os.Stat(path + ".bad"); err == nil {
		c.mu.Lock()
		c.bytes -= info.Size()
		c.mu.Unlock()
	}
}

// evict removes oldest-mtime entries until total size fits maxBytes.
func (c *Cache) evict() {
	c.mu.Lock()
	over := c.maxBytes > 0 && c.bytes > c.maxBytes
	c.mu.Unlock()
	if !over {
		return
	}
	type ent struct {
		path  string
		size  int64
		mtime int64
	}
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	var ents []ent
	var total int64
	for _, de := range des {
		if de.IsDir() || filepath.Ext(de.Name()) != ".run" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		ents = append(ents, ent{filepath.Join(c.dir, de.Name()), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].mtime < ents[j].mtime })
	var evicted uint64
	for _, e := range ents {
		if total <= c.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			evicted++
		}
	}
	c.mu.Lock()
	c.bytes = total
	c.stats.Evictions += evicted
	c.mu.Unlock()
}

// Stats returns a snapshot of cache traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// SizeBytes returns the current total size of live entries.
func (c *Cache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// PublishMetrics exports the cache counters as runcache.* gauges.
func (c *Cache) PublishMetrics() {
	c.publish()
}

func (c *Cache) publish() {
	reg := c.hooks.Registry
	if reg == nil {
		return
	}
	c.mu.Lock()
	s, b := c.stats, c.bytes
	c.mu.Unlock()
	reg.Gauge("runcache.hits").Set(float64(s.Hits))
	reg.Gauge("runcache.misses").Set(float64(s.Misses))
	reg.Gauge("runcache.puts").Set(float64(s.Puts))
	reg.Gauge("runcache.evictions").Set(float64(s.Evictions))
	reg.Gauge("runcache.quarantined").Set(float64(s.Quarantined))
	reg.Gauge("runcache.bytes").Set(float64(b))
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
	c.publish()
}

// --- entry framing ---------------------------------------------------------

// encodeEntry writes: magic, then a varint-framed header (format version,
// stamp, key, payload length), the payload, and a CRC32 (IEEE) over
// everything before it.
func encodeEntry(w io.Writer, stamp, key string, payload []byte) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(entryMagic); err != nil {
		return err
	}
	if err := atomicio.WriteUvarint(bw, formatVersion); err != nil {
		return err
	}
	for _, s := range []string{stamp, key} {
		if err := atomicio.WriteUvarint(bw, uint64(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	if err := atomicio.WriteUvarint(bw, uint64(len(payload))); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.Write(sum[:])
	return err
}

// decodeEntry verifies the framing of raw and returns the payload. Any
// mismatch — magic, version, stamp, key, length, CRC — is an error.
func decodeEntry(raw []byte, stamp, key string) ([]byte, error) {
	if len(raw) < len(entryMagic)+4 {
		return nil, fmt.Errorf("runcache: entry too short (%d bytes)", len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("runcache: CRC mismatch")
	}
	if string(body[:len(entryMagic)]) != entryMagic {
		return nil, fmt.Errorf("runcache: bad magic")
	}
	r := &sliceReader{b: body[len(entryMagic):]}
	if v := r.uvarint(); v != formatVersion {
		return nil, fmt.Errorf("runcache: format version %d, want %d", v, formatVersion)
	}
	gotStamp := r.str()
	gotKey := r.str()
	payload := r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	if gotStamp != stamp {
		return nil, fmt.Errorf("runcache: stamp %q, want %q", gotStamp, stamp)
	}
	if gotKey != key {
		return nil, fmt.Errorf("runcache: key mismatch (hash collision or tampering)")
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("runcache: %d trailing bytes", len(r.b))
	}
	return payload, nil
}

// sliceReader decodes varint-framed fields from a byte slice with a
// sticky error.
type sliceReader struct {
	b   []byte
	err error
}

func (r *sliceReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("runcache: truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *sliceReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.err = fmt.Errorf("runcache: truncated field (%d > %d bytes)", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *sliceReader) str() string { return string(r.bytes()) }
