package pipeline

import (
	"testing"

	"dcpi/internal/alpha"
)

// figure2Block is the paper's copy-loop basic block (Figure 2).
const figure2Block = `
loop:
	ldq   t4, 0(t1)
	addq  t0, 0x4, t0
	ldq   t5, 8(t1)
	ldq   t6, 16(t1)
	ldq   a0, 24(t1)
	lda   t1, 32(t1)
	stq   t4, 0(t2)
	cmpult t0, v0, t4
	stq   t5, 8(t2)
	stq   t6, 16(t2)
	stq   a0, 24(t2)
	lda   t2, 32(t2)
	bne   t4, loop
`

func scheduleSrc(t *testing.T, src string) ([]alpha.Inst, []SchedInst) {
	t.Helper()
	a := alpha.MustAssemble(src)
	return a.Code, Default().ScheduleBlock(a.Code)
}

// TestScheduleCopyLoop validates the static schedule against the paper's
// Figure 2/7: best case is 8 cycles for 13 instructions (0.62 CPI), with
// M=0 exactly at the second-slot instructions shown dual-issued there.
func TestScheduleCopyLoop(t *testing.T) {
	code, sched := scheduleSrc(t, figure2Block)
	if got := BlockBestCase(sched); got != 8 {
		for i, s := range sched {
			t.Logf("%2d %-24s M=%d paired=%v issue=%d", i, code[i], s.M, s.Paired, s.IssueCycle)
		}
		t.Fatalf("best case = %d cycles, want 8", got)
	}
	// Paper's Figure 7: issue points (M>0) at indices 0,2,4,6,8,9,10,12.
	wantM := []int64{1, 0, 1, 0, 1, 0, 1, 0, 1, 1, 1, 0, 1}
	for i, s := range sched {
		if s.M != wantM[i] {
			t.Errorf("inst %d (%v): M = %d, want %d", i, code[i], s.M, wantM[i])
		}
	}
	// The stq at index 9 follows another stq: slotting hazard (the paper's
	// "s" annotation before 009834).
	if !sched[9].SlotHazard {
		t.Error("stq after stq should carry a slotting hazard")
	}
	var foundSlot bool
	for _, st := range sched[9].Stalls {
		if st.Kind == StallSlotting {
			foundSlot = true
		}
	}
	if !foundSlot {
		t.Error("slotting stall not recorded")
	}
}

func TestScheduleLoadUseStall(t *testing.T) {
	code, sched := scheduleSrc(t, `
p:
	ldq  t0, 0(t1)
	addq t0, 1, t2
`)
	_ = code
	// addq must wait for the load's 2-cycle latency: issues at cycle 2,
	// became head at cycle 1 -> M = 2, with an Ra dependency on inst 0.
	if sched[1].M != 2 {
		t.Fatalf("consumer M = %d, want 2", sched[1].M)
	}
	if len(sched[1].Stalls) != 1 {
		t.Fatalf("stalls = %+v", sched[1].Stalls)
	}
	st := sched[1].Stalls[0]
	if st.Kind != StallRaDep || st.Culprit != 0 || st.Cycles != 1 {
		t.Errorf("stall = %+v, want RaDep on 0 for 1 cycle", st)
	}
}

func TestScheduleRbDependency(t *testing.T) {
	_, sched := scheduleSrc(t, `
p:
	ldq  t1, 0(t2)
	ldq  t0, 0(t1)
`)
	// Second load's base register (Rb slot) comes from the first load.
	if sched[1].M != 2 {
		t.Fatalf("M = %d, want 2", sched[1].M)
	}
	if st := sched[1].Stalls[0]; st.Kind != StallRbDep {
		t.Errorf("stall kind = %v, want Rb dependency", st.Kind)
	}
}

func TestScheduleMultiplierBusy(t *testing.T) {
	_, sched := scheduleSrc(t, `
p:
	mulq t0, t1, t2
	mulq t3, t4, t5
`)
	// Second multiply waits for the multiplier: issues at cycle 8.
	if sched[1].IssueCycle != 8 {
		t.Fatalf("second mulq issues at %d, want 8", sched[1].IssueCycle)
	}
	var fu bool
	for _, st := range sched[1].Stalls {
		if st.Kind == StallFUDep && st.Culprit == 0 {
			fu = true
		}
	}
	if !fu {
		t.Errorf("FU dependency not recorded: %+v", sched[1].Stalls)
	}
}

func TestScheduleDivider(t *testing.T) {
	_, sched := scheduleSrc(t, `
p:
	divt f1, f2, f3
	divt f4, f5, f6
`)
	if sched[1].IssueCycle != 16 {
		t.Fatalf("second divt issues at %d, want 16", sched[1].IssueCycle)
	}
}

func TestScheduleIndependentPairs(t *testing.T) {
	_, sched := scheduleSrc(t, `
p:
	addq t0, 1, t1
	addq t2, 1, t3
	addq t4, 1, t5
	addq t6, 1, t7
`)
	if got := BlockBestCase(sched); got != 2 {
		t.Fatalf("four independent adds = %d cycles, want 2", got)
	}
	if !sched[1].Paired || !sched[3].Paired || sched[0].Paired || sched[2].Paired {
		t.Errorf("pairing = %v %v %v %v", sched[0].Paired, sched[1].Paired, sched[2].Paired, sched[3].Paired)
	}
}

func TestScheduleDependentChainDoesNotPair(t *testing.T) {
	_, sched := scheduleSrc(t, `
p:
	addq t0, 1, t1
	addq t1, 1, t2
`)
	if sched[1].Paired {
		t.Error("dependent instruction paired")
	}
	// With a 1-cycle integer latency the consumer issues the next cycle
	// with no extra wait: M=1, no recorded stall.
	if sched[1].M != 1 || len(sched[1].Stalls) != 0 {
		t.Errorf("M = %d stalls = %+v, want M=1 with no stalls", sched[1].M, sched[1].Stalls)
	}
}

func TestScheduleBranchSecondSlotOnly(t *testing.T) {
	_, sched := scheduleSrc(t, `
p:
	addq t0, 1, t1
	bne  t2, p
`)
	if !sched[1].Paired {
		t.Error("branch should pair into the second slot")
	}
	_, sched = scheduleSrc(t, `
p:
	bne  t2, p
`)
	if sched[0].M != 1 {
		t.Errorf("solo branch M = %d", sched[0].M)
	}
}

func TestScheduleSoloInstructions(t *testing.T) {
	for _, src := range []string{
		"p:\n mb\n addq t0, 1, t1",
		"p:\n call_pal 0x83\n addq t0, 1, t1",
	} {
		_, sched := scheduleSrc(t, src)
		if sched[1].Paired {
			t.Errorf("instruction paired with solo-issue op in %q", src)
		}
	}
}

func TestCanPairRules(t *testing.T) {
	asm := func(line string) alpha.Inst {
		return alpha.MustAssemble("x:\n " + line).Code[0]
	}
	cases := []struct {
		a, b string
		want bool
	}{
		{"ldq t0, 0(t1)", "ldq t2, 8(t1)", true},
		{"ldq t0, 0(t1)", "addq t3, 1, t4", true},
		{"stq t0, 0(t1)", "cmpult t3, t4, t5", true},
		{"stq t0, 0(t1)", "lda t2, 32(t2)", true},
		{"stq t0, 0(t1)", "stq t2, 8(t1)", false}, // Figure 2's slotting hazard
		{"stq t0, 0(t1)", "ldq t2, 8(t1)", true},
		{"addq t0, 1, t1", "bne t2, x", true},
		{"bne t2, x", "addq t0, 1, t1", false}, // branch only in slot 2
		{"mulq t0, t1, t2", "mulq t3, t4, t5", false},
		{"mulq t0, t1, t2", "stq t3, 0(t4)", false},
		{"divt f1, f2, f3", "divt f4, f5, f6", false},
		{"divt f1, f2, f3", "addt f4, f5, f6", true},
		{"addq t0, 1, t1", "addq t1, 1, t2", false}, // RAW
		{"addq t0, 1, t1", "addq t2, 1, t1", false}, // WAW
		{"addq t0, 1, t1", "stq t1, 0(t2)", false},  // store data RAW
		{"mb", "addq t0, 1, t1", false},
		{"jmp (t0)", "addq t0, 1, t1", false},
	}
	for _, tc := range cases {
		if got := CanPair(asm(tc.a), asm(tc.b)); got != tc.want {
			t.Errorf("CanPair(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLatencyTable(t *testing.T) {
	m := Default()
	cases := []struct {
		line string
		want int64
	}{
		{"addq t0, 1, t1", 1},
		{"lda t0, 8(t1)", 1},
		{"ldq t0, 0(t1)", 2},
		{"mulq t0, t1, t2", 8},
		{"addt f0, f1, f2", 4},
		{"divt f0, f1, f2", 16},
		{"cmoveq t0, t1, t2", 2},
		{"stq t0, 0(t1)", 0},
		{"bsr ra, x", 1},
	}
	for _, tc := range cases {
		in := alpha.MustAssemble("x:\n " + tc.line).Code[0]
		if got := m.Latency(in.Op); got != tc.want {
			t.Errorf("Latency(%s) = %d, want %d", tc.line, got, tc.want)
		}
	}
}

func TestFUse(t *testing.T) {
	m := Default()
	if fu, busy := m.FUse(alpha.OpMULQ); fu != FUMul || busy != 8 {
		t.Errorf("mulq FUse = %v, %d", fu, busy)
	}
	if fu, busy := m.FUse(alpha.OpDIVT); fu != FUDiv || busy != 16 {
		t.Errorf("divt FUse = %v, %d", fu, busy)
	}
	if fu, _ := m.FUse(alpha.OpADDQ); fu != FUNone {
		t.Errorf("addq FUse = %v", fu)
	}
	if FUMul.String() != "IMULL" || FUDiv.String() != "FDIV" || FUNone.String() != "none" {
		t.Error("FU strings wrong")
	}
}

func TestStallKindStrings(t *testing.T) {
	want := map[StallKind]string{
		StallSlotting: "Slotting",
		StallRaDep:    "Ra dependency",
		StallRbDep:    "Rb dependency",
		StallRcDep:    "Rc dependency",
		StallFUDep:    "FU dependency",
		StallNone:     "none",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// Property: M is never negative, and the sum of M equals the last issue
// cycle + 1 for any block (head time is conserved).
func TestScheduleConservation(t *testing.T) {
	srcs := []string{
		figure2Block,
		"p:\n mulq t0, t1, t2\n addq t2, 1, t3\n stq t3, 0(t4)\n bne t3, p",
		"p:\n ldq t0, 0(t1)\n ldq t2, 8(t1)\n addq t0, t2, t3\n stq t3, 16(t1)",
		"p:\n divt f1, f2, f3\n addt f3, f3, f4\n stt f4, 0(t1)",
	}
	for _, src := range srcs {
		code, sched := scheduleSrc(t, src)
		var sum int64
		for i, s := range sched {
			if s.M < 0 {
				t.Errorf("inst %d has negative M", i)
			}
			if s.Paired && s.M != 0 {
				t.Errorf("inst %d paired but M=%d", i, s.M)
			}
			sum += s.M
		}
		last := sched[len(sched)-1]
		if sum != last.IssueCycle+1 {
			t.Errorf("%q: sum(M) = %d, last issue = %d", code[0], sum, last.IssueCycle)
		}
	}
}
