package pipeline

import (
	"dcpi/internal/alpha"
)

// StallKind classifies a static stall, matching the static categories in the
// paper's Figure 4 summary (Slotting, Ra/Rb/Rc dependency, FU dependency).
type StallKind uint8

const (
	StallNone StallKind = iota
	StallSlotting
	StallRaDep
	StallRbDep
	StallRcDep
	StallFUDep
)

func (k StallKind) String() string {
	switch k {
	case StallSlotting:
		return "Slotting"
	case StallRaDep:
		return "Ra dependency"
	case StallRbDep:
		return "Rb dependency"
	case StallRcDep:
		return "Rc dependency"
	case StallFUDep:
		return "FU dependency"
	}
	return "none"
}

func stallForSlot(slot byte) StallKind {
	switch slot {
	case 'a':
		return StallRaDep
	case 'b':
		return StallRbDep
	case 'c':
		return StallRcDep
	}
	return StallNone
}

// StaticStall is one reason an instruction could not issue as early as it
// became head, under the no-dynamic-stall schedule.
type StaticStall struct {
	Kind    StallKind
	Cycles  int64
	Culprit int // block-relative index of the causing instruction, or -1
}

// SchedInst is the static schedule of one instruction within its block.
type SchedInst struct {
	// M is the paper's Mᵢ: the minimum number of cycles the instruction
	// spends at the head of the issue queue absent dynamic stalls. It is 0
	// exactly when the instruction dual-issues in the second slot.
	M int64
	// Paired reports the instruction issued in the same cycle as its
	// predecessor.
	Paired bool
	// IssueCycle is the cycle the instruction issues at, relative to the
	// block entering the machine at cycle 0 with all registers ready.
	IssueCycle int64
	// Stalls lists the static reasons (and magnitudes) for M > 1.
	Stalls []StaticStall
	// SlotHazard reports that the instruction could not pair with its
	// predecessor purely because of slotting rules (the "s" annotation in
	// the paper's Figure 2).
	SlotHazard bool
}

// ScheduleBlock computes the static schedule of a basic block, assuming all
// registers are ready when the block begins and no dynamic stalls occur
// (every load hits the D-cache). This matches the paper's "best-case"
// schedule; like the paper's tools, it ignores preceding blocks (§6.1.3,
// limitation three).
func (m Model) ScheduleBlock(code []alpha.Inst) []SchedInst {
	out := make([]SchedInst, len(code))
	ready := make(map[regKey]int64)  // register -> ready cycle
	producer := make(map[regKey]int) // register -> producing index
	fuFree := [fuCount]int64{}       // unit -> next free cycle
	fuUser := [fuCount]int{-1, -1, -1}

	head := int64(0) // cycle the current instruction became head
	for i := 0; i < len(code); i++ {
		in := code[i]
		s := &out[i]

		// Earliest issue given operands and functional units.
		earliest := head
		for _, src := range in.Sources() {
			if t, ok := ready[key(src)]; ok && t > earliest {
				earliest = t
			}
		}
		if fu, _ := m.FUse(in.Op); fu != FUNone && fuFree[fu] > earliest {
			earliest = fuFree[fu]
		}

		issue := earliest
		s.IssueCycle = issue
		s.M = issue - head + 1

		// Record stall reasons for the wait beyond the head cycle.
		if issue > head {
			for _, src := range in.Sources() {
				if t, ok := ready[key(src)]; ok && t > head {
					s.Stalls = append(s.Stalls, StaticStall{
						Kind:    stallForSlot(src.Slot),
						Cycles:  t - head,
						Culprit: producer[key(src)],
					})
				}
			}
			if fu, _ := m.FUse(in.Op); fu != FUNone && fuFree[fu] > head {
				s.Stalls = append(s.Stalls, StaticStall{
					Kind:    StallFUDep,
					Cycles:  fuFree[fu] - head,
					Culprit: fuUser[fu],
				})
			}
		}

		commit := func(idx int, at int64) {
			ins := code[idx]
			if d, ok := ins.Dest(); ok {
				ready[key(d)] = at + m.Latency(ins.Op)
				producer[key(d)] = idx
			}
			if fu, busy := m.FUse(ins.Op); fu != FUNone {
				fuFree[fu] = at + busy
				fuUser[fu] = idx
			}
		}
		commit(i, issue)

		// Try to dual-issue the next instruction in the second slot.
		if i+1 < len(code) {
			next := code[i+1]
			if CanPair(in, next) {
				ok := true
				for _, src := range next.Sources() {
					if t, okr := ready[key(src)]; okr && t > issue {
						ok = false
						break
					}
				}
				if fu, _ := m.FUse(next.Op); ok && fu != FUNone && fuFree[fu] > issue {
					ok = false
				}
				if ok {
					p := &out[i+1]
					p.Paired = true
					p.M = 0
					p.IssueCycle = issue
					commit(i+1, issue)
					i++ // consumed the partner
				}
			} else if !in.Op.EndsBlock() && !ClassPairable(in, next) {
				// The next instruction will issue alone because of slotting
				// rules (not a register dependency).
				out[i+1].SlotHazard = true
			}
		}

		head = issue + 1
	}

	// An instruction whose only reason for M=1 (rather than 0) is a slot
	// hazard gets a Slotting stall entry so summaries can aggregate it.
	for i := range out {
		if out[i].SlotHazard && !out[i].Paired {
			out[i].Stalls = append(out[i].Stalls, StaticStall{
				Kind:    StallSlotting,
				Cycles:  1,
				Culprit: i - 1,
			})
		}
	}
	return out
}

// BlockBestCase sums Mᵢ over the block: the "best-case" cycles the paper's
// dcpicalc reports (Figure 2's "Best-case 8/13 = 0.62CPI").
func BlockBestCase(sched []SchedInst) int64 {
	var total int64
	for _, s := range sched {
		total += s.M
	}
	return total
}
