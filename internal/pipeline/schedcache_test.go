package pipeline

import (
	"reflect"
	"sync"
	"testing"

	"dcpi/internal/alpha"
)

// TestScheduleBlockCachedEquivalence: the memoized entry point must return
// schedules deep-equal to fresh ScheduleBlock computations, for multiple
// models (the model is part of the cache key) and on repeated calls.
func TestScheduleBlockCachedEquivalence(t *testing.T) {
	blocks := [][]alpha.Inst{
		alpha.MustAssemble(figure2Block).Code,
		alpha.MustAssemble(`
main:
	addq t0, 1, t0
	ldq t1, 0(t3)
	xor t1, t0, t2
	mulq t2, t2, t2
	bne t2, main
`).Code,
		{}, // empty block
		{{Op: alpha.OpADDQ, Ra: 1, Rb: 2, Rc: 3}},
	}
	slow := Default()
	slow.MulLat = 40
	models := []Model{Default(), slow}
	for _, m := range models {
		for i, code := range blocks {
			want := m.ScheduleBlock(code)
			for pass := 0; pass < 2; pass++ {
				got := m.ScheduleBlockCached(code)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("model %+v block %d pass %d: cached schedule differs", m, i, pass)
				}
			}
		}
	}
	hits, misses, entries := SchedCacheStats()
	if hits == 0 || misses == 0 || entries == 0 {
		t.Errorf("cache stats hits=%d misses=%d entries=%d: expected all nonzero after repeated lookups",
			hits, misses, entries)
	}
}

// TestScheduleBlockCachedConcurrent hammers one block from many
// goroutines; under -race this proves the cache's locking discipline, and
// the deep-equal check proves shared results are safe to hand out.
func TestScheduleBlockCachedConcurrent(t *testing.T) {
	code := alpha.MustAssemble(figure2Block).Code
	m := Default()
	want := m.ScheduleBlock(code)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := m.ScheduleBlockCached(code); !reflect.DeepEqual(got, want) {
					t.Error("concurrent cached schedule differs")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestTablesMatchModel: the flattened per-opcode timing tables must agree
// with the Model methods they replace in the hot loop.
func TestTablesMatchModel(t *testing.T) {
	slow := Default()
	slow.L2Lat = 99
	slow.DivLat = 123
	for _, m := range []Model{Default(), slow} {
		tab := NewTables(m)
		for op := 0; op < alpha.NumOps; op++ {
			o := alpha.Op(op)
			if got, want := tab.Lat[op], m.Latency(o); got != want {
				t.Fatalf("%v: Lat=%d, Model.Latency=%d", o, got, want)
			}
			fu, busy := m.FUse(o)
			if tab.FU[op] != fu || tab.FUBusy[op] != busy {
				t.Fatalf("%v: FU=%v/%d, Model.FUse=%v/%d", o, tab.FU[op], tab.FUBusy[op], fu, busy)
			}
		}
	}
}

// TestCanPairMetaEquivalence checks the metadata-driven pairing predicate
// against a brute-force oracle built from the allocating Sources/Dest API.
func TestCanPairMetaEquivalence(t *testing.T) {
	insts := []alpha.Inst{
		{Op: alpha.OpADDQ, Ra: 1, Rb: 2, Rc: 3},
		{Op: alpha.OpADDQ, Ra: 3, Rb: 2, Rc: 4}, // RAW on r3
		{Op: alpha.OpADDQ, Ra: 5, Rb: 6, Rc: 3}, // WAW on r3
		{Op: alpha.OpLDQ, Ra: 7, Rb: 30},
		{Op: alpha.OpSTQ, Ra: 7, Rb: 30},
		{Op: alpha.OpBNE, Ra: 3, Disp: -2},
		{Op: alpha.OpADDT, Ra: 1, Rb: 2, Rc: 3},
		{Op: alpha.OpMULQ, Ra: 1, Rb: 2, Rc: 9},
		{Op: alpha.OpJSR, Ra: 26, Rb: 27},
		{Op: alpha.OpADDQ, Ra: 31, Rb: 31, Rc: 31},
	}
	oracle := func(a, b alpha.Inst) bool {
		if !ClassPairable(a, b) {
			return false
		}
		d, ok := a.Dest()
		if !ok {
			return true
		}
		for _, s := range b.Sources() {
			if s.Reg == d.Reg && s.FP == d.FP {
				return false
			}
		}
		if bd, ok := b.Dest(); ok && bd.Reg == d.Reg && bd.FP == d.FP {
			return false
		}
		return true
	}
	for _, a := range insts {
		for _, b := range insts {
			am, bm := a.Meta(), b.Meta()
			if got, want := CanPairMeta(a, b, &am, &bm), oracle(a, b); got != want {
				t.Errorf("CanPairMeta(%v, %v) = %v, oracle %v", a, b, got, want)
			}
			if got, want := CanPair(a, b), oracle(a, b); got != want {
				t.Errorf("CanPair(%v, %v) = %v, oracle %v", a, b, got, want)
			}
		}
	}
}
