package pipeline

import (
	"sync"
	"sync/atomic"

	"dcpi/internal/alpha"
)

// Static block schedules are pure functions of (model, instructions), and
// the same blocks are rescheduled constantly: every AnalyzeProc call walks
// the same procedure bodies, the accuracy experiments analyze every image
// once per run, and the fidelity tests re-analyze identical code under many
// seeds. ScheduleBlockCached memoizes ScheduleBlock behind a content-keyed
// lookup so that work happens once per distinct block.
//
// Returned schedules are shared: callers must treat the slice and the
// Stalls slices inside it as read-only. (The analysis copies StaticStall
// values out before rebasing culprit indices, so this holds today.)

// instKeyBytes is the packed size of one instruction in a cache key: Op,
// Ra, Rb, Rc, Lit, UseLit, Pal(2), Disp(4).
const instKeyBytes = 12

// schedCacheMaxEntries bounds the per-model cache; distinct blocks in a
// process are naturally few (workload images are fixed), so the bound only
// guards against pathological callers. On overflow the model's cache
// resets.
const schedCacheMaxEntries = 1 << 16

// schedCache is keyed first by Model (a flat struct of int64s, comparable),
// then by the packed instruction words. The two-level shape lets the hit
// path use a direct map[string] index on a []byte conversion, which the
// compiler compiles without copying the key.
var (
	schedMu    sync.RWMutex
	schedCache = map[Model]map[string][]SchedInst{}

	schedHits   atomic.Uint64
	schedMisses atomic.Uint64
)

// packCode serializes code into buf (grown as needed) for use as a map key.
func packCode(buf []byte, code []alpha.Inst) []byte {
	for _, in := range code {
		buf = append(buf,
			byte(in.Op), in.Ra, in.Rb, in.Rc, in.Lit, boolByte(in.UseLit),
			byte(in.Pal), byte(in.Pal>>8),
			byte(in.Disp), byte(in.Disp>>8), byte(in.Disp>>16), byte(in.Disp>>24))
	}
	return buf
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// keyBufPool recycles pack buffers so cache hits allocate only the lookup.
var keyBufPool = sync.Pool{
	New: func() any { return make([]byte, 0, 256*instKeyBytes) },
}

// ScheduleBlockCached is ScheduleBlock behind the package-level memo table.
// The returned schedule is shared and must be treated as read-only.
func (m Model) ScheduleBlockCached(code []alpha.Inst) []SchedInst {
	buf := keyBufPool.Get().([]byte)
	buf = packCode(buf[:0], code)

	schedMu.RLock()
	sched, ok := schedCache[m][string(buf)] // key copy elided on lookup
	schedMu.RUnlock()
	if ok {
		keyBufPool.Put(buf)
		schedHits.Add(1)
		return sched
	}

	schedMisses.Add(1)
	sched = m.ScheduleBlock(code)
	k := string(buf) // copies buf; safe to recycle
	keyBufPool.Put(buf)

	schedMu.Lock()
	inner := schedCache[m]
	if inner == nil || len(inner) >= schedCacheMaxEntries {
		inner = map[string][]SchedInst{}
		schedCache[m] = inner
	}
	// A racing goroutine may have inserted the same key; keep the first
	// entry so every caller shares one schedule.
	if prior, ok := inner[k]; ok {
		sched = prior
	} else {
		inner[k] = sched
	}
	schedMu.Unlock()
	return sched
}

// SchedCacheStats reports the memo table's cumulative hit/miss counts and
// current size (exported into the obs registry by the tools).
func SchedCacheStats() (hits, misses uint64, entries int) {
	schedMu.RLock()
	for _, inner := range schedCache {
		entries += len(inner)
	}
	schedMu.RUnlock()
	return schedHits.Load(), schedMisses.Load(), entries
}
