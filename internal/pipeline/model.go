// Package pipeline is the static machine model shared by the timing
// simulator and the analysis tools: issue and slotting rules, operation
// latencies, functional-unit occupancy, and the static basic-block scheduler
// that computes each instruction's minimum head-of-queue time Mᵢ and its
// static stall reasons.
//
// Sharing one model between simulation and analysis mirrors the paper's
// premise that the analysis uses "an accurate model of the processor issue
// logic" (§6.1.2): whatever the simulated machine does statically, the
// analysis can predict exactly.
package pipeline

import (
	"dcpi/internal/alpha"
)

// Model holds the machine's timing parameters. All values are in cycles.
type Model struct {
	// Result latencies (issue to result-ready).
	IntLat  int64 // simple integer ops, lda
	CMovLat int64 // conditional moves
	LoadLat int64 // D-cache hit load-to-use
	MulLat  int64 // integer multiply
	FPLat   int64 // FP add/mul/convert/compare
	DivLat  int64 // FP divide

	// Functional-unit occupancy (issue to next same-unit issue).
	MulBusy int64
	DivBusy int64

	// Dynamic penalties, used by the simulator and by the analysis when it
	// bounds dynamic-stall candidates.
	L2Lat             int64 // L1 miss, board-cache hit
	MemLat            int64 // board-cache miss, all the way to memory
	TLBMissPenalty    int64 // ITB or DTB fill
	MispredictPenalty int64 // branch mispredict redirect
	TakenBranchBubble int64 // fetch bubble after a correctly predicted taken branch
}

// Default returns the 21164-like model used throughout; see DESIGN.md §3.
func Default() Model {
	return Model{
		IntLat:  1,
		CMovLat: 2,
		LoadLat: 2,
		MulLat:  8,
		FPLat:   4,
		DivLat:  16,

		MulBusy: 8,
		DivBusy: 16,

		L2Lat:             12,
		MemLat:            80,
		TLBMissPenalty:    30,
		MispredictPenalty: 5,
		TakenBranchBubble: 1,
	}
}

// Latency returns the result latency of op in cycles (0 for instructions
// that produce no register result).
func (m Model) Latency(op alpha.Op) int64 {
	switch op.Class() {
	case alpha.ClassLoad:
		return m.LoadLat
	case alpha.ClassIntMul:
		return m.MulLat
	case alpha.ClassFPOp:
		return m.FPLat
	case alpha.ClassFPDiv:
		return m.DivLat
	case alpha.ClassIntOp:
		switch op {
		case alpha.OpCMOVEQ, alpha.OpCMOVNE, alpha.OpCMOVLT, alpha.OpCMOVGE:
			return m.CMovLat
		}
		return m.IntLat
	case alpha.ClassBranch, alpha.ClassJump:
		return m.IntLat // link-register value
	}
	return 0
}

// FU identifies a long-occupancy functional unit.
type FU uint8

const (
	FUNone FU = iota
	FUMul     // integer multiplier ("IMULL busy" in dcpicalc summaries)
	FUDiv     // floating-point divider ("FDIV busy")
	fuCount
)

func (f FU) String() string {
	switch f {
	case FUMul:
		return "IMULL"
	case FUDiv:
		return "FDIV"
	}
	return "none"
}

// FUse returns which long-occupancy unit op ties up and for how long.
func (m Model) FUse(op alpha.Op) (FU, int64) {
	switch op.Class() {
	case alpha.ClassIntMul:
		return FUMul, m.MulBusy
	case alpha.ClassFPDiv:
		return FUDiv, m.DivBusy
	}
	return FUNone, 0
}

// Tables is a Model flattened into per-opcode arrays, so the simulator's
// per-cycle loop resolves latency and functional-unit use with one indexed
// load instead of re-walking the Class switches for every dynamic
// instruction. Build once per Model (NewTables) and share freely; the
// tables are immutable after construction.
type Tables struct {
	Lat    [alpha.NumOps]int64 // result latency (Model.Latency)
	FU     [alpha.NumOps]FU    // long-occupancy unit (Model.FUse)
	FUBusy [alpha.NumOps]int64 // unit occupancy (Model.FUse)
}

// NewTables flattens m into per-opcode arrays.
func NewTables(m Model) *Tables {
	t := &Tables{}
	for op := 0; op < alpha.NumOps; op++ {
		t.Lat[op] = m.Latency(alpha.Op(op))
		t.FU[op], t.FUBusy[op] = m.FUse(alpha.Op(op))
	}
	return t
}

// issuesSolo reports whether op always issues alone (and ends the group).
func issuesSolo(op alpha.Op) bool {
	switch op {
	case alpha.OpCALLPAL, alpha.OpMB, alpha.OpWMB, alpha.OpHALT:
		return true
	}
	return false
}

// CanPair reports whether b can issue in the same cycle as a, with a in the
// first slot, considering only class/slotting rules (not operand readiness).
//
// Rules (DESIGN.md §3, validated against the paper's Figure 2 pairings):
//   - at most one store per cycle (adjacent stores are the figure's
//     "slotting hazard"),
//   - two loads may pair; a load and a store may pair,
//   - a branch or jump only in the second slot, and never two,
//   - integer multiplies and stores share a pipe and cannot pair,
//   - PAL calls, barriers, and halt issue alone,
//   - b must not read a result a produces this cycle, nor write a register
//     a writes (checked by dependsOn).
func CanPair(a, b alpha.Inst) bool {
	am, bm := a.Meta(), b.Meta()
	return CanPairMeta(a, b, &am, &bm)
}

// CanPairMeta is CanPair with the operand metadata supplied by the caller
// (typically from an image's pre-decoded table), so the simulator's
// dual-issue probe never re-decodes or allocates.
func CanPairMeta(a, b alpha.Inst, am, bm *alpha.InstMeta) bool {
	return ClassPairable(a, b) && !dependsOnMeta(am, bm)
}

// CanJoinGroupMeta reports whether cand can issue in the same cycle as an
// already-formed group (group[0] is the head slot), i.e. it pairs cleanly
// with every member: the slotting rules hold pairwise and cand neither reads
// nor rewrites any member's same-cycle result. With a one-element group this
// is exactly CanPairMeta, which keeps the simulator's dual-issue behaviour
// bit-identical; wider groups (hw.Config.IssueWidth > 2) only add stricter
// conjuncts, so the one-store-per-cycle and branch-ends-the-group rules fall
// out of the pairwise checks.
func CanJoinGroupMeta(group []alpha.Inst, metas []*alpha.InstMeta, cand alpha.Inst, candMeta *alpha.InstMeta) bool {
	for i, a := range group {
		if !CanPairMeta(a, cand, metas[i], candMeta) {
			return false
		}
	}
	return true
}

// ClassPairable applies only the slotting (class) rules, ignoring register
// dependencies. When this alone fails, the second instruction carries a
// "slotting hazard" in dcpicalc output.
func ClassPairable(a, b alpha.Inst) bool {
	if issuesSolo(a.Op) || issuesSolo(b.Op) {
		return false
	}
	ca, cb := a.Op.Class(), b.Op.Class()
	// Control flow only in the second slot.
	if ca == alpha.ClassBranch || ca == alpha.ClassJump {
		return false
	}
	// At most one store; multiplies contend with stores for the same pipe.
	if cb == alpha.ClassStore && (ca == alpha.ClassStore || ca == alpha.ClassIntMul) {
		return false
	}
	if ca == alpha.ClassStore && cb == alpha.ClassIntMul {
		return false
	}
	// Two long-latency FP units of the same kind cannot pair.
	if ca == alpha.ClassFPDiv && cb == alpha.ClassFPDiv {
		return false
	}
	if ca == alpha.ClassIntMul && cb == alpha.ClassIntMul {
		return false
	}
	return true
}

// regKey identifies a register for dependency purposes.
type regKey struct {
	reg uint8
	fp  bool
}

func key(o alpha.Operand) regKey { return regKey{o.Reg, o.FP} }

// dependsOnMeta reports whether b reads or rewrites a's destination
// register, consulting only pre-decoded metadata.
func dependsOnMeta(am, bm *alpha.InstMeta) bool {
	if !am.HasDst {
		return false
	}
	dk := key(am.Dst)
	for _, s := range bm.Sources() {
		if key(s) == dk {
			return true
		}
	}
	if bm.HasDst && key(bm.Dst) == dk {
		return true // WAW in one cycle not allowed
	}
	return false
}
