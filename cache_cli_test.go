package dcpibench

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIRunCache checks the persistent-cache and sharding contract end to
// end on a small section: -cache-dir and -shard/-merge-shards must never
// change stdout by a byte, the warm pass must skip every simulation, and
// the cache-stats stderr line must account for how runs were resolved.
func TestCLIRunCache(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI cache test is slow")
	}
	bin := filepath.Join(t.TempDir(), "dcpieval")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/dcpieval")
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build dcpieval: %v\n%s", err, msg)
	}
	base := []string{"-fig", "7", "-runs", "1", "-scale", "0.1"}
	run := func(extra ...string) (stdout, stderr string) {
		cmd := exec.Command(bin, append(append([]string{}, base...), extra...)...)
		var outBuf, errBuf bytes.Buffer
		cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
		if err := cmd.Run(); err != nil {
			t.Fatalf("dcpieval %v: %v\n%s", extra, err, errBuf.String())
		}
		return outBuf.String(), errBuf.String()
	}
	statsOf := func(stderr string) map[string]float64 {
		var line string
		for _, l := range strings.Split(stderr, "\n") {
			if rest, ok := strings.CutPrefix(l, "dcpieval-cache-stats "); ok {
				line = rest
			}
		}
		if line == "" {
			t.Fatalf("no dcpieval-cache-stats line:\n%s", stderr)
		}
		stats := make(map[string]float64)
		if err := json.Unmarshal([]byte(line), &stats); err != nil {
			t.Fatalf("cache-stats not JSON: %v\n%s", err, line)
		}
		return stats
	}

	want, _ := run()

	// Cold pass populates the cache without changing output.
	dir := filepath.Join(t.TempDir(), "cache")
	metrics := filepath.Join(t.TempDir(), "m.json")
	cold, coldErr := run("-cache-dir", dir, "-metrics-out", metrics)
	if cold != want {
		t.Errorf("cold -cache-dir changed stdout:\n%s", cold)
	}
	cs := statsOf(coldErr)
	if cs["simulated"] == 0 || cs["disk_hits"] != 0 {
		t.Errorf("cold stats implausible: %v", cs)
	}

	// Warm pass: byte-identical, zero simulations, all disk hits.
	warm, warmErr := run("-cache-dir", dir, "-metrics-out", metrics)
	if warm != want {
		t.Errorf("warm -cache-dir changed stdout:\n%s", warm)
	}
	ws := statsOf(warmErr)
	if ws["simulated"] != 0 {
		t.Errorf("warm pass simulated %v runs, want 0: %v", ws["simulated"], ws)
	}
	if ws["disk_hits"] < 1 {
		t.Errorf("warm pass had no disk hits: %v", ws)
	}

	// Two shards then merge: stdout identical to the unsharded run, and
	// the merge resolves the sharded runs by rehydration.
	sh := t.TempDir()
	a1 := filepath.Join(sh, "s1")
	a2 := filepath.Join(sh, "s2")
	if out, _ := run("-shard", "1/2", "-shard-out", a1); out != "" {
		t.Errorf("shard mode wrote to stdout:\n%s", out)
	}
	run("-shard", "2/2", "-shard-out", a2)
	merged, mergedErr := run("-merge-shards", a1+","+a2, "-metrics-out", metrics)
	if merged != want {
		t.Errorf("merged shard output differs from unsharded run:\n%s", merged)
	}
	ms := statsOf(mergedErr)
	if ms["disk_hits"] < 1 {
		t.Errorf("merge pass rehydrated nothing: %v", ms)
	}
	if ms["simulated"] != 0 {
		t.Errorf("merge pass re-simulated %v runs, want 0: %v", ms["simulated"], ms)
	}
}
