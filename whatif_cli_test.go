package dcpibench

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIWhatif checks the what-if sweep end to end through the binary: a
// small grid over two workloads must produce a parseable report with a
// causal score, the JSON artifact must round-trip, and a warm rerun over a
// persistent cache must simulate nothing while keeping stdout byte for
// byte.
func TestCLIWhatif(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI what-if test simulates several runs")
	}
	bin := filepath.Join(t.TempDir(), "dcpiwhatif")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/dcpiwhatif")
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build dcpiwhatif: %v\n%s", err, msg)
	}
	dir := filepath.Join(t.TempDir(), "cache")
	jsonOut := filepath.Join(t.TempDir(), "report.json")
	base := []string{
		"-workloads", "compress,li", "-scale", "0.05",
		"-grid", "dcache2x,memlat2x,issue1",
		"-cache-dir", dir, "-json", jsonOut,
	}
	run := func() (stdout, stderr string) {
		cmd := exec.Command(bin, base...)
		var outBuf, errBuf bytes.Buffer
		cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
		if err := cmd.Run(); err != nil {
			t.Fatalf("dcpiwhatif: %v\n%s", err, errBuf.String())
		}
		return outBuf.String(), errBuf.String()
	}
	statsOf := func(stderr string) map[string]float64 {
		var line string
		for _, l := range strings.Split(stderr, "\n") {
			if rest, ok := strings.CutPrefix(l, "dcpiwhatif-cache-stats "); ok {
				line = rest
			}
		}
		if line == "" {
			t.Fatalf("no dcpiwhatif-cache-stats line:\n%s", stderr)
		}
		stats := make(map[string]float64)
		if err := json.Unmarshal([]byte(line), &stats); err != nil {
			t.Fatalf("cache-stats not JSON: %v\n%s", err, line)
		}
		return stats
	}

	cold, coldErr := run()
	for _, want := range []string{
		"what-if sweep: compress", "what-if sweep: li",
		"dcache2x", "memlat2x", "issue1", "aggregate:", "precision",
	} {
		if !strings.Contains(cold, want) {
			t.Errorf("report missing %q:\n%s", want, cold)
		}
	}
	cs := statsOf(coldErr)
	// Two workloads x (baseline + 3 points), all distinct configurations.
	if cs["simulated"] != 8 {
		t.Errorf("cold pass simulated %v runs, want 8", cs["simulated"])
	}

	var reports []map[string]any
	blob, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &reports); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if len(reports) != 2 || reports[0]["workload"] != "compress" || reports[1]["workload"] != "li" {
		t.Fatalf("JSON reports malformed: %d entries", len(reports))
	}
	if w, ok := reports[0]["base_wall_cycles"].(float64); !ok || w <= 0 {
		t.Errorf("compress base wall = %v", reports[0]["base_wall_cycles"])
	}

	// Warm rerun: byte-identical stdout, zero simulations, all disk hits.
	warm, warmErr := run()
	if warm != cold {
		t.Errorf("warm rerun changed stdout:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	ws := statsOf(warmErr)
	if ws["simulated"] != 0 {
		t.Errorf("warm rerun simulated %v runs, want 0: %v", ws["simulated"], ws)
	}
	if ws["disk_hits"] != 8 {
		t.Errorf("warm rerun disk hits = %v, want 8: %v", ws["disk_hits"], ws)
	}
}
