package dcpibench

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIOptimizeLoop exercises the closed §7 loop the way a user would:
// dcpiopt profiles, re-lays, measures, and iterates; dcpilayout refuses
// procedures that cannot be re-laid.
func TestCLIOptimizeLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI optimization loop is slow")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		return out
	}
	run := func(prog string, args ...string) string {
		cmd := exec.Command(prog, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(prog), args, err, out)
		}
		return string(out)
	}
	runFail := func(prog string, args ...string) string {
		cmd := exec.Command(prog, args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s %v unexpectedly succeeded:\n%s", filepath.Base(prog), args, out)
		}
		return string(out)
	}

	dcpiopt := build("dcpiopt")
	dcpilayout := build("dcpilayout")
	dcpid := build("dcpid")

	// Happy path: the loop converges on the pessimized classifier with a
	// large measured win, reported per iteration.
	out := run(dcpiopt, "-workload", "classify")
	for _, want := range []string{"baseline:", "iter 0:", "kept", "converged", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("dcpiopt missing %q:\n%s", want, out)
		}
	}

	// -q keeps only the summary line.
	out = run(dcpiopt, "-workload", "classify", "-q")
	if strings.Contains(out, "baseline:") || strings.Contains(out, "iter 0:") {
		t.Errorf("dcpiopt -q printed per-iteration detail:\n%s", out)
	}
	if !strings.Contains(out, "converged") {
		t.Errorf("dcpiopt -q missing summary:\n%s", out)
	}

	// A satisfied gain gate exits zero; an unsatisfiable one exits nonzero.
	run(dcpiopt, "-workload", "classify", "-q", "-min-gain", "0.5")
	out = runFail(dcpiopt, "-workload", "classify", "-q", "-min-gain", "100")
	if !strings.Contains(out, "below required gain") {
		t.Errorf("dcpiopt -min-gain:\n%s", out)
	}

	// gcc's image cannot be re-laid (bsr crosses procedures): the loop must
	// refuse with the reason, not silently skip or corrupt.
	out = runFail(dcpiopt, "-workload", "gcc", "-scale", "0.02")
	if !strings.Contains(out, "outside the procedure") {
		t.Errorf("dcpiopt on gcc:\n%s", out)
	}

	out = runFail(dcpiopt)
	if !strings.Contains(out, "-workload is required") {
		t.Errorf("dcpiopt usage error:\n%s", out)
	}

	// dcpilayout, pointed at a profile of the same unsafe procedure, must
	// refuse for the same reason.
	db := filepath.Join(bin, "db-gcc")
	run(dcpid, "-workload", "gcc", "-mode", "cycles", "-db", db,
		"-scale", "0.1", "-seed", "1", "-period", "768")
	out = runFail(dcpilayout, "-db", db, "-image", "/usr/bin/gcc", "-proc", "main")
	if !strings.Contains(out, "bsr") {
		t.Errorf("dcpilayout on bsr procedure:\n%s", out)
	}
}
