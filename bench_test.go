// Package dcpibench regenerates every table and figure of the paper's
// evaluation as Go benchmarks — the per-experiment index in DESIGN.md maps
// each benchmark to its table/figure. Run them all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the experiment's headline metric via
// b.ReportMetric (overhead percentages, accuracy fractions, correlation
// coefficients) so regressions in the reproduction are visible in benchmark
// output. The full text renderings come from `go run ./cmd/dcpieval -all`.
package dcpibench

import (
	"io"
	"testing"

	"dcpi/internal/dcpi"
	"dcpi/internal/eval"
	"dcpi/internal/optimize"
	"dcpi/internal/runner"
	"dcpi/internal/sim"
)

// benchOpts keeps each experiment benchmark in the seconds range; dcpieval
// exposes bigger sweeps.
var benchOpts = eval.Options{
	Runs:  2,
	Scale: 0.12,
	Workloads: []string{
		"compress", "gcc", "mccalpin-assign", "wave5", "x11perf",
	},
}

// BenchmarkTable2Workloads measures base runtimes (paper Table 2).
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, r := range rows {
			mean += r.MeanCycles
		}
		b.ReportMetric(mean/float64(len(rows)), "simcycles/workload")
	}
}

// BenchmarkTable3Overhead measures profiling slowdown (paper Table 3:
// 1-3% typical).
func BenchmarkTable3Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		var cyc, mux float64
		for _, r := range rows {
			cyc += r.Overhead[sim.ModeCycles].Mean
			mux += r.Overhead[sim.ModeMux].Mean
		}
		b.ReportMetric(100*cyc/float64(len(rows)), "cycles-overhead-%")
		b.ReportMetric(100*mux/float64(len(rows)), "mux-overhead-%")
	}
}

// BenchmarkTable4CostComponents measures per-sample costs (paper Table 4).
func BenchmarkTable4CostComponents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		var gccMiss, otherMiss float64
		var nOther int
		for _, r := range rows {
			if r.Mode != sim.ModeCycles {
				continue
			}
			if r.Workload == "gcc" {
				gccMiss = r.MissRate
			} else {
				otherMiss += r.MissRate
				nOther++
			}
		}
		b.ReportMetric(100*gccMiss, "gcc-missrate-%")
		b.ReportMetric(100*otherMiss/float64(nOther), "other-missrate-%")
	}
}

// BenchmarkTable5Space measures daemon memory and database size (Table 5).
func BenchmarkTable5Space(b *testing.B) {
	o := benchOpts
	o.Workloads = []string{"compress", "x11perf"}
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table5(o)
		if err != nil {
			b.Fatal(err)
		}
		var disk, mem float64
		for _, r := range rows {
			disk += float64(r.DiskBytes)
			mem += float64(r.PeakBytes)
		}
		b.ReportMetric(disk/float64(len(rows)), "disk-bytes")
		b.ReportMetric(mem/float64(len(rows)), "daemon-peak-bytes")
	}
}

// BenchmarkFig1X11Prof regenerates the dcpiprof listing (Figure 1).
func BenchmarkFig1X11Prof(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := eval.Fig1(benchOpts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2CopyLoop regenerates the dcpicalc copy-loop listing
// (Figure 2) and reports the best-case vs actual CPI gap.
func BenchmarkFig2CopyLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := dcpi.Run(dcpi.Config{
			Workload:     "mccalpin-assign",
			Mode:         sim.ModeCycles,
			Scale:        benchOpts.Scale,
			Seed:         1,
			CyclesPeriod: sim.PeriodSpec{Base: 2048, Spread: 512},
		})
		if err != nil {
			b.Fatal(err)
		}
		pa, err := r.AnalyzeProc("/bin/mccalpin", "copyloop")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pa.BestCaseCPI, "bestcase-cpi")
		b.ReportMetric(pa.ActualCPI, "actual-cpi")
	}
}

// BenchmarkFig7FreqTable regenerates the frequency-estimation table
// (Figure 7).
func BenchmarkFig7FreqTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := eval.Fig7(benchOpts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Wave5Stats regenerates the dcpistats variance study
// (Figure 3).
func BenchmarkFig3Wave5Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig3(benchOpts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4StallSummary regenerates the smooth_ stall summary
// (Figure 4).
func BenchmarkFig4StallSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := eval.Fig4(benchOpts, io.Discard, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6RuntimeDistribution collects the running-time scatter
// (Figure 6).
func BenchmarkFig6RuntimeDistribution(b *testing.B) {
	o := benchOpts
	o.Runs = 2
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig6(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8FreqAccuracy measures instruction-frequency estimate
// accuracy (Figure 8; the paper reports 73% of samples within 5%).
func BenchmarkFig8FreqAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Within5, "within5-%")
		b.ReportMetric(100*res.Within10, "within10-%")
	}
}

// BenchmarkFig9EdgeAccuracy measures edge-frequency estimate accuracy
// (Figure 9; edges are worse than blocks, as in the paper).
func BenchmarkFig9EdgeAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig9(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Within10, "within10-%")
	}
}

// BenchmarkFig10IcacheCorrelation measures the IMISS vs I-cache-stall
// correlation (Figure 10; the paper reports r = 0.86-0.91).
func BenchmarkFig10IcacheCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig10(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RTop, "r-top")
		b.ReportMetric(res.RMid, "r-mid")
	}
}

// BenchmarkAblationHashTable runs the §5.4 design sweep and reports the
// 6-way + swap-to-front cost relative to the shipping design (the paper
// projects a 10-20% reduction).
func BenchmarkAblationHashTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.AblationHT(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Label == "6-way swap-to-front" {
				b.ReportMetric(100*row.CostRatio, "cost-vs-shipping-%")
			}
		}
	}
}

// BenchmarkRunnerCacheEffectiveness measures the evaluation engine's
// memoization across overlapping experiment sections: Table 2's base runs
// are a subset of Table 3's, so with a shared runner the dedup rate is the
// fraction of simulation requests served from cache. Captured in
// BENCH_*.json via benchjson.
func BenchmarkRunnerCacheEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched := runner.New(0)
		o := benchOpts
		o.Runner = sched
		if _, err := eval.Table2(o); err != nil {
			b.Fatal(err)
		}
		if _, err := eval.Table3(o); err != nil {
			b.Fatal(err)
		}
		st := sched.Stats()
		b.ReportMetric(float64(st.Simulated), "sims-run")
		b.ReportMetric(float64(st.MemHits), "cache-hits")
		if st.Simulated+st.MemHits > 0 {
			b.ReportMetric(100*float64(st.MemHits)/float64(st.Simulated+st.MemHits), "dedup-%")
		}
	}
}

// BenchmarkAnalysisThroughput measures the offline analysis speed itself
// (the paper: ~3 minutes for 26MB of executables).
func BenchmarkAnalysisThroughput(b *testing.B) {
	r, err := dcpi.Run(dcpi.Config{
		Workload:     "x11perf",
		Mode:         sim.ModeCycles,
		Scale:        0.12,
		Seed:         1,
		CyclesPeriod: sim.PeriodSpec{Base: 2048, Spread: 512},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts int
	for i := 0; i < b.N; i++ {
		insts = 0
		for _, im := range r.Loader.Images() {
			for _, sym := range im.Symbols {
				pa, err := r.AnalyzeProc(im.Path, sym.Name)
				if err != nil {
					b.Fatal(err)
				}
				insts += len(pa.Insts)
			}
		}
	}
	b.ReportMetric(float64(insts), "insts-analyzed")
}

// BenchmarkOptLoop measures the closed §7 optimization loop end to end:
// profile, whole-image re-layout, ground-truth re-measurement, iterated
// to convergence on the pessimized classifier. The reported speedup is
// the experiment's headline metric (EXPERIMENTS.md "Closing the loop").
func BenchmarkOptLoop(b *testing.B) {
	var speedup float64
	var iters int
	for i := 0; i < b.N; i++ {
		sched := runner.New(0)
		res, err := optimize.RunLoop(optimize.LoopConfig{
			Base: dcpi.Config{Workload: "classify", Scale: 0.25, Seed: 3},
			Run:  sched.Run,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged || res.Best < 0 {
			b.Fatalf("loop did not converge to an improvement: %+v", res)
		}
		speedup, iters = res.Speedup(), len(res.Iters)
	}
	b.ReportMetric(speedup, "speedup-x")
	b.ReportMetric(float64(iters), "loop-iters")
}
