package dcpibench

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline exercises the tool chain the way a user would: collect
// profiles with dcpid, then read them back with every offline tool.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		return out
	}
	run := func(prog string, args ...string) string {
		cmd := exec.Command(prog, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(prog), args, err, out)
		}
		return string(out)
	}

	dcpid := build("dcpid")
	dcpiprof := build("dcpiprof")
	dcpicalc := build("dcpicalc")
	dcpistats := build("dcpistats")
	dcpisum := build("dcpisum")
	dcpidiff := build("dcpidiff")
	dcpiepoch := build("dcpiepoch")
	dcpicfg := build("dcpicfg")
	dcpitopixie := build("dcpitopixie")
	dcpiannotate := build("dcpiannotate")
	dcpilayout := build("dcpilayout")

	db1 := filepath.Join(bin, "db1")
	db2 := filepath.Join(bin, "db2")

	out := run(dcpid, "-workload", "wave5", "-mode", "default", "-db", db1,
		"-scale", "0.15", "-seed", "1", "-period", "2048")
	if !strings.Contains(out, "finished") {
		t.Fatalf("dcpid output: %s", out)
	}
	run(dcpid, "-workload", "wave5", "-mode", "default", "-db", db2,
		"-scale", "0.15", "-seed", "9", "-period", "2048")

	out = run(dcpiprof, "-db", db1)
	for _, want := range []string{"parmvr_", "smooth_", "cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("dcpiprof missing %q:\n%s", want, out)
		}
	}
	out = run(dcpiprof, "-db", db1, "-images")
	if !strings.Contains(out, "/usr/bin/wave5") {
		t.Errorf("dcpiprof -images:\n%s", out)
	}

	out = run(dcpicalc, "-db", db1, "-image", "/usr/bin/wave5", "-proc", "smooth_")
	if !strings.Contains(out, "Best-case") || !strings.Contains(out, "ldt") {
		t.Errorf("dcpicalc:\n%s", out)
	}
	out = run(dcpicalc, "-db", db1, "-image", "/usr/bin/wave5", "-proc", "smooth_", "-summary")
	if !strings.Contains(out, "Subtotal dynamic") {
		t.Errorf("dcpicalc -summary:\n%s", out)
	}

	out = run(dcpistats, db1, db2)
	if !strings.Contains(out, "range%") {
		t.Errorf("dcpistats:\n%s", out)
	}

	out = run(dcpisum, "-db", db1)
	if !strings.Contains(out, "Whole-program summary") {
		t.Errorf("dcpisum:\n%s", out)
	}

	out = run(dcpidiff, db1, db2)
	if !strings.Contains(out, "delta") {
		t.Errorf("dcpidiff:\n%s", out)
	}

	out = run(dcpiepoch, "-db", db1)
	if !strings.Contains(out, "epoch 1") || !strings.Contains(out, "workload=wave5") {
		t.Errorf("dcpiepoch:\n%s", out)
	}
	out = run(dcpiepoch, "-db", db1, "-new")
	if !strings.Contains(out, "epoch 2") {
		t.Errorf("dcpiepoch -new:\n%s", out)
	}

	out = run(dcpicfg, "-db", db2, "-image", "/usr/bin/wave5", "-proc", "smooth_")
	if !strings.Contains(out, "digraph") {
		t.Errorf("dcpicfg:\n%s", out)
	}

	out = run(dcpitopixie, "-db", db2)
	if !strings.Contains(out, "parmvr_") {
		t.Errorf("dcpitopixie:\n%s", out)
	}

	out = run(dcpiannotate, "-db", db2, "-image", "/usr/bin/wave5")
	if !strings.Contains(out, "smooth_:") {
		t.Errorf("dcpiannotate:\n%s", out)
	}

	out = run(dcpilayout, "-db", db2, "-image", "/usr/bin/wave5", "-proc", "smooth_", "-q")
	if !strings.Contains(out, "re-laid") {
		t.Errorf("dcpilayout:\n%s", out)
	}
}

// TestExamplesRun executes every example program end to end.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}

// TestCLIFaultScenarios exercises dcpid's fault injection end to end: a
// stalled daemon loses samples (counted, with conservation intact) and a
// crash mid-merge leaves a database the tools can still read.
func TestCLIFaultScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI fault scenarios are slow")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		return out
	}
	run := func(prog string, args ...string) string {
		cmd := exec.Command(prog, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(prog), args, err, out)
		}
		return string(out)
	}
	dcpid := build("dcpid")
	dcpiprof := build("dcpiprof")

	// Scenario 1: daemon stalled for the whole run, tiny driver buffers.
	// Samples must be lost, reported, and conserved.
	dbStall := filepath.Join(bin, "db-stall")
	out := run(dcpid, "-workload", "gcc", "-mode", "cycles", "-db", dbStall,
		"-scale", "0.25", "-period", "768", "-buckets", "64", "-overflow", "64",
		"-fault", "stall=0-100M")
	if !strings.Contains(out, "samples lost") {
		t.Errorf("stalled run reported no loss:\n%s", out)
	}
	if strings.Contains(out, " 0 samples lost") {
		t.Errorf("stalled run lost nothing:\n%s", out)
	}
	if !strings.Contains(out, "conservation") || strings.Contains(out, "VIOLATED") {
		t.Errorf("conservation not reported ok:\n%s", out)
	}

	// Scenario 2: crash during the second disk merge. The torn file is
	// quarantined, the daemon restarts and resumes merging, and the
	// database stays readable by the offline tools.
	dbCrash := filepath.Join(bin, "db-crash")
	out = run(dcpid, "-workload", "wave5", "-mode", "default", "-db", dbCrash,
		"-scale", "0.15", "-seed", "1", "-period", "2048",
		"-drain-interval", "100000", "-merge-interval", "250000",
		"-fault", "crash-merge=2,merge-profiles=1")
	if !strings.Contains(out, "1 crashes") {
		t.Errorf("crash not reported:\n%s", out)
	}
	if strings.Contains(out, "VIOLATED") {
		t.Errorf("conservation violated after crash:\n%s", out)
	}
	var quarantined int
	entries, err := os.ReadDir(filepath.Join(dbCrash, "epoch-0001"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".bad") {
			quarantined++
		}
	}
	if quarantined != 1 {
		t.Errorf("quarantined files = %d, want 1", quarantined)
	}
	out = run(dcpiprof, "-db", dbCrash)
	if !strings.Contains(out, "cycles") {
		t.Errorf("dcpiprof after crash recovery:\n%s", out)
	}
}
