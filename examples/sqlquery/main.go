// Sqlquery recreates the paper's motivating anecdote: "our tools pinpointed
// a performance problem in a commercial database system; fixing the problem
// reduced the response time of an SQL query from 180 to 14 hours."
//
// A query joins two tables. The slow plan is an index-nested-loop join that
// chases pointers through an unclustered index — every probe a D-cache and
// board-cache miss. Continuous profiling pinpoints the probe loop and the
// analysis blames the D-cache; the fixed plan (a hash join with sequential
// scans) removes the pointer chase. The example profiles both and compares.
//
//	go run ./examples/sqlquery
package main

import (
	"fmt"
	"log"
	"os"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/daemon"
	"dcpi/internal/driver"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/sim"
	"dcpi/internal/workload"
)

// The slow plan: for each outer row, walk the index chain to find the match
// (pointer chasing, cache-hostile), then accumulate.
const slowPlan = `
sql_exec:
	lda  sp, -16(sp)
	stq  ra, 0(sp)
	bsr  ra, nested_loop_join
	ldq  ra, 0(sp)
	lda  sp, 16(sp)
	halt

nested_loop_join:
	; a0 = outer table, a1 = index chain heads, a2 = rows
	bis  a0, zero, t1
	bis  a2, zero, t0
	lda  t5, 0(zero)
.outer:
	ldq  t2, 0(t1)          ; outer key
	and  t2, 0x7f, t3
	s8addq t3, a1, t4
	ldq  t4, 0(t4)          ; index chain head
	lda  t6, 12(zero)       ; chain length
.probe:
	ldq  t7, 0(t4)          ; chase the chain (misses)
	ldq  t4, 8(t4)
	subq t6, 1, t6
	bne  t6, .probe
	addq t5, t7, t5
	lda  t1, 32(t1)
	subq t0, 1, t0
	bne  t0, .outer
	ret  (ra)
`

// The fixed plan: build a hash table over the inner table, then stream the
// outer table sequentially.
const fastPlan = `
sql_exec:
	lda  sp, -16(sp)
	stq  ra, 0(sp)
	bsr  ra, hash_build
	bsr  ra, hash_probe
	ldq  ra, 0(sp)
	lda  sp, 16(sp)
	halt

hash_build:
	; a3 = inner table, a4 = hash area, a2 = rows
	bis  a3, zero, t1
	bis  a2, zero, t0
.build:
	ldq  t2, 0(t1)
	and  t2, 0x7f, t3
	s8addq t3, a4, t4
	stq  t2, 0(t4)
	lda  t1, 32(t1)
	subq t0, 1, t0
	bne  t0, .build
	ret  (ra)

hash_probe:
	; a0 = outer table (sequential scan), a4 = hash area
	bis  a0, zero, t1
	bis  a2, zero, t0
	lda  t5, 0(zero)
.scan:
	ldq  t2, 0(t1)
	and  t2, 0x7f, t3
	s8addq t3, a4, t4
	ldq  t6, 0(t4)
	addq t5, t6, t5
	lda  t1, 32(t1)
	subq t0, 1, t0
	bne  t0, .scan
	ret  (ra)
`

const rows = 20000

func runPlan(name, src string) (int64, *planResult) {
	kernel, abi := workload.Kernel()
	l := loader.New(kernel)
	drv := driver.New(driver.Config{NumCPUs: 1})
	dmn := daemon.New(daemon.Config{}, drv)
	l.Notify = dmn.HandleNotification
	m := sim.NewMachine(sim.Options{
		Loader: l, ABI: abi, Seed: 9,
		Profile: sim.ProfileConfig{
			Mode:         sim.ModeCycles,
			Sink:         planSink{drv, dmn},
			CyclesPeriod: sim.PeriodSpec{Base: 2048, Spread: 512},
		},
	})
	exec := image.New(name, "/usr/sbin/"+name, image.KindExecutable, alpha.MustAssemble(src))
	p, err := l.NewProcess(name, exec)
	if err != nil {
		log.Fatal(err)
	}
	const (
		outerBase = loader.HeapBase
		innerBase = loader.HeapBase + 16<<20
		indexBase = loader.HeapBase + 32<<20
		chainBase = loader.HeapBase + 48<<20
		hashBase  = loader.HeapBase + 96<<20
	)
	p.Regs.WriteI(alpha.RegA0, outerBase)
	p.Regs.WriteI(alpha.RegA1, indexBase)
	p.Regs.WriteI(alpha.RegA2, rows)
	p.Regs.WriteI(alpha.RegA3, innerBase)
	p.Regs.WriteI(alpha.RegA4, hashBase)
	// Tables: 32-byte rows with pseudo-random keys.
	x := uint64(77)
	for i := 0; i < rows; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p.Mem.Store(outerBase+uint64(i)*32, 8, x)
		p.Mem.Store(innerBase+uint64(i)*32, 8, x)
	}
	// The unclustered index: 128 chains of cells scattered across 64MB so
	// every hop misses the board cache.
	for c := uint64(0); c < 128; c++ {
		head := chainBase + c*379*8192
		p.Mem.Store(indexBase+c*8, 8, head)
		cell := head
		for hop := uint64(0); hop < 12; hop++ {
			next := chainBase + ((c*977+hop*131)%6000)*8192
			p.Mem.Store(cell, 8, c+hop) // payload
			p.Mem.Store(cell+8, 8, next)
			cell = next
		}
	}
	m.Spawn(p)
	wall := m.Run(1 << 42)
	if err := dmn.Flush(); err != nil {
		log.Fatal(err)
	}
	return wall, &planResult{daemon: dmn, image: exec, machine: m}
}

// planResult bundles what the analysis step needs from a run.
type planResult struct {
	daemon  *daemon.Daemon
	image   *image.Image
	machine *sim.Machine
}

// cyclesSamples extracts the image's CYCLES profile.
func (r *planResult) cyclesSamples() map[uint64]uint64 {
	for _, p := range r.daemon.Profiles() {
		if p.ImagePath == r.image.Path && p.Event == sim.EvCycles {
			return p.Counts
		}
	}
	return map[uint64]uint64{}
}

type planSink struct {
	drv *driver.Driver
	dmn *daemon.Daemon
}

func (s planSink) Sample(sm sim.Sample) int64 {
	return s.drv.Record(sm.CPU, sm.PID, sm.PC, sm.Event)
}
func (s planSink) Poll(cpu int, clock int64) int64 { return s.dmn.Poll(cpu, clock) }

func main() {
	fmt.Println("Profiling the slow query plan (index nested-loop join)...")
	slowWall, slow := runPlan("sqlslow", slowPlan)
	fmt.Printf("  response time: %d cycles\n\n", slowWall)

	// Where do the cycles go?
	samples := slow.cyclesSamples()
	code, base, err := slow.image.ProcCode("nested_loop_join")
	if err != nil {
		log.Fatal(err)
	}
	pa := analysis.AnalyzeProc("nested_loop_join", code, base, samples, nil,
		slow.machine.Model, 2304)
	fmt.Printf("nested_loop_join: best-case %.2f CPI, actual %.2f CPI\n",
		pa.BestCaseCPI, pa.ActualCPI)
	fmt.Printf("dcpicalc blames (Figure 4 view):\n")
	fmt.Printf("  D-cache miss:  %4.1f%% to %4.1f%% of cycles\n",
		100*pa.Summary.DynMin[analysis.CauseDCache], 100*pa.Summary.DynMax[analysis.CauseDCache])
	fmt.Printf("  DTB miss:      %4.1f%% to %4.1f%%\n",
		100*pa.Summary.DynMin[analysis.CauseDTB], 100*pa.Summary.DynMax[analysis.CauseDTB])
	fmt.Printf("  execution:     %4.1f%%\n\n", 100*pa.Summary.Execution)

	// The hottest instruction is the pointer chase.
	var hot *analysis.InstAnalysis
	for i := range pa.Insts {
		if hot == nil || pa.Insts[i].Samples > hot.Samples {
			hot = &pa.Insts[i]
		}
	}
	fmt.Printf("hottest instruction: %06x  %-22s %.1f cycles/execution\n",
		hot.Offset, hot.Inst.DisasmAt(hot.Offset), hot.CPI)
	fmt.Println("→ the index chain walk is memory-bound; replace the unclustered")
	fmt.Println("  index probe with a hash join.")

	fmt.Println("\nProfiling the fixed plan (hash join)...")
	fastWall, _ := runPlan("sqlfast", fastPlan)
	fmt.Printf("  response time: %d cycles\n\n", fastWall)
	fmt.Printf("speedup: %.1fx (the paper's anecdote: 180 hours -> 14 hours, 12.9x)\n",
		float64(slowWall)/float64(fastWall))
	if fastWall >= slowWall {
		fmt.Fprintln(os.Stderr, "unexpected: fixed plan not faster")
		os.Exit(1)
	}
}
