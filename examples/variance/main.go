// Variance reproduces the paper's §3.3 study (Figures 3 and 4): run the
// wave5-like workload several times, observe that run times vary with
// physical page placement, use dcpistats to isolate the procedure with the
// largest cross-run variance (smooth_), and then summarize where its cycles
// go in the fastest run.
//
//	go run ./examples/variance
package main

import (
	"fmt"
	"log"
	"os"

	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

func main() {
	const runs = 8
	fmt.Printf("Running wave5 %d times with different page placements...\n\n", runs)

	var (
		results []*dcpi.Result
		maps    []map[string]uint64
		totals  []uint64
	)
	for i := 0; i < runs; i++ {
		r, err := dcpi.Run(dcpi.Config{
			Workload:     "wave5",
			Mode:         sim.ModeCycles,
			Scale:        0.3,
			Seed:         uint64(100 + i*13),
			CyclesPeriod: sim.PeriodSpec{Base: 2048, Spread: 512},
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
		m := r.ProcSampleMap()
		maps = append(maps, m)
		var t uint64
		for _, v := range m {
			t += v
		}
		totals = append(totals, t)
		fmt.Printf("  run %d: %10d cycles\n", i+1, r.Wall)
	}

	fmt.Println("\ndcpistats across the sample sets (sorted by range%):")
	fmt.Println()
	rows := dcpi.StatsAcrossRuns(maps)
	dcpi.FormatStats(os.Stdout, rows, totals, 10)

	// Find the fastest run, as the paper does, and summarize smooth_.
	fastest := results[0]
	for _, r := range results[1:] {
		if r.Wall < fastest.Wall {
			fastest = r
		}
	}
	fmt.Printf("\nSummary of smooth_ in the fastest run (%d cycles):\n\n", fastest.Wall)
	pa, err := fastest.AnalyzeProc("/usr/bin/wave5", "smooth_")
	if err != nil {
		log.Fatal(err)
	}
	dcpi.FormatSummary(os.Stdout, pa)

	fmt.Println()
	fmt.Println("smooth_ tops the range% column because its three 1MB arrays map to")
	fmt.Println("different physical pages each run; when they conflict in the")
	fmt.Println("board cache its D-cache-miss stalls grow, exactly the effect the")
	fmt.Println("paper attributes wave5's 11% run-time variance to.")
}
