// Continuousopt demonstrates the paper's §7 vision — "a 'continuous
// optimization' system that runs in the background improving the
// performance of key programs" — end to end on the simulated machine:
//
//  1. run a program under continuous profiling,
//
//  2. feed the profile into the analysis (frequencies, edge estimates),
//
//  3. rewrite the hot procedure with the profile-driven block-layout
//     optimizer (hot-path straightening + branch-sense inversion, the
//     Spike/OM role),
//
//  4. run the optimized binary and measure the improvement.
//
//     go run ./examples/continuousopt
package main

import (
	"fmt"
	"log"
	"os"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/daemon"
	"dcpi/internal/driver"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/optimize"
	"dcpi/internal/sim"
	"dcpi/internal/workload"
)

// A token classifier whose layout pessimizes the common case: the frequent
// class is reached through a taken branch plus an extra jump every
// iteration, and a rare slow path sits in the middle of the hot loop.
const program = `
classify:
	lda  t0, 60000(zero)
	bis  a0, zero, t1
	lda  t5, 0(zero)
	lda  t9, 4095(zero)
.loop:
	ldq  t2, 0(t1)
	and  t2, 0xf, t3
	beq  t3, .rare         ; 1 in 16: rare token
	br   .common           ; common case pays an extra jump
.rare:
	sll  t2, 3, t4
	xor  t4, t5, t5
	addq t5, 7, t5
	br   .next
.common:
	addq t5, t2, t5
.next:
	lda  t1, 8(t1)
	and  t1, t9, t6
	bne  t6, .nowrap
	bis  a0, zero, t1
.nowrap:
	subq t0, 1, t0
	bne  t0, .loop
	halt
`

func buildAndRun(name string, code []alpha.Inst, profile bool) (int64, map[uint64]uint64) {
	kernel, abi := workload.Kernel()
	l := loader.New(kernel)
	var (
		drv  *driver.Driver
		dmn  *daemon.Daemon
		sink sim.Sink
	)
	cfg := sim.ProfileConfig{}
	if profile {
		drv = driver.New(driver.Config{NumCPUs: 1, ZeroCost: true})
		dmn = daemon.New(daemon.Config{CostPerEntry: -1}, drv)
		l.Notify = dmn.HandleNotification
		sink = optSink{drv, dmn}
		cfg = sim.ProfileConfig{
			Mode:         sim.ModeCycles,
			Sink:         sink,
			CyclesPeriod: sim.PeriodSpec{Base: 1024, Spread: 256},
		}
	}
	m := sim.NewMachine(sim.Options{Loader: l, ABI: abi, Seed: 4, Profile: cfg})
	asm := &alpha.Assembly{Code: code, Symbols: []alpha.Symbol{{Name: "classify", Offset: 0, Size: uint64(len(code)) * alpha.InstBytes}}}
	exec := image.New(name, "/bin/"+name, image.KindExecutable, asm)
	p, err := l.NewProcess(name, exec)
	if err != nil {
		log.Fatal(err)
	}
	p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
	x := uint64(99)
	for i := 0; i < 512; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p.Mem.Store(loader.HeapBase+uint64(i)*8, 8, x)
	}
	m.Spawn(p)
	wall := m.Run(1 << 40)

	var samples map[uint64]uint64
	if profile {
		if err := dmn.Flush(); err != nil {
			log.Fatal(err)
		}
		for _, prof := range dmn.Profiles() {
			if prof.ImagePath == exec.Path && prof.Event == sim.EvCycles {
				samples = prof.Counts
			}
		}
	}
	return wall, samples
}

type optSink struct {
	drv *driver.Driver
	dmn *daemon.Daemon
}

func (s optSink) Sample(sm sim.Sample) int64 {
	return s.drv.Record(sm.CPU, sm.PID, sm.PC, sm.Event)
}
func (s optSink) Poll(cpu int, clock int64) int64 { return s.dmn.Poll(cpu, clock) }

func main() {
	original := alpha.MustAssemble(program).Code

	fmt.Println("1. Profiling the original binary...")
	baseWall, samples := buildAndRun("classify", original, true)
	fmt.Printf("   %d cycles\n\n", baseWall)

	fmt.Println("2. Analyzing (frequencies, CPIs, edge estimates)...")
	pa := analysis.AnalyzeProc("classify", original, 0, samples, nil,
		sim.NewMachine(sim.Options{Loader: loader.New(func() *image.Image { k, _ := workload.Kernel(); return k }())}).Model,
		1152)
	fmt.Printf("   best-case %.2f CPI, actual %.2f CPI\n\n", pa.BestCaseCPI, pa.ActualCPI)

	fmt.Println("3. Rewriting with the profile-driven layout optimizer...")
	res, err := optimize.ReorderProcedure(pa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   block order %v\n", res.Order)
	fmt.Printf("   %d branch(es) inverted, %d br removed, %d br added\n\n",
		res.Inverted, res.RemovedBranches, res.AddedBranches)

	fmt.Println("4. Running the optimized binary (unprofiled)...")
	optWall, _ := buildAndRun("classify-opt", res.Code, false)
	origWall, _ := buildAndRun("classify", original, false)
	fmt.Printf("   original  %d cycles\n", origWall)
	fmt.Printf("   optimized %d cycles\n", optWall)
	fmt.Printf("   speedup   %.1f%%\n", 100*(float64(origWall)/float64(optWall)-1))

	if optWall >= origWall {
		fmt.Fprintln(os.Stderr, "unexpected: no improvement")
		os.Exit(1)
	}
	fmt.Println("\n(the paper's §3 mgrid anecdote found 15% the same way: profile,")
	fmt.Println(" pinpoint, transform, verify — continuously, in the background)")
}
