// Continuousopt demonstrates the paper's §7 vision — "a 'continuous
// optimization' system that runs in the background improving the
// performance of key programs" — closed end to end on the simulated
// machine by optimize.RunLoop:
//
//  1. run the workload under continuous profiling,
//
//  2. derive a whole-image re-layout from the profile: hot-path block
//     straightening with branch-sense inversion inside each procedure
//     (the Spike/OM role), hottest-first procedure placement across the
//     image,
//
//  3. re-run the rewritten image unprofiled and read the machine's
//     ground-truth counters,
//
//  4. keep the layout only if it measured faster, and repeat from the new
//     layout until the plan stops changing.
//
// The classify workload is built as the §7 target: its common-case arm
// pays a taken branch plus an extra jump, and its hot helper sits exactly
// one direct-mapped I-cache of cold padding away from its call site, so
// caller and callee evict each other on every single call. Both
// pessimizations are exactly what profile-driven re-layout removes.
//
//	go run ./examples/continuousopt
package main

import (
	"fmt"
	"os"

	"dcpi/internal/dcpi"
	"dcpi/internal/optimize"
	"dcpi/internal/runner"
)

func main() {
	fmt.Println("Closing the §7 loop on the classify workload:")
	fmt.Println("profile -> re-lay hottest image -> measure -> repeat to a fixed point")
	fmt.Println()

	r := runner.New(0)
	res, err := optimize.RunLoop(optimize.LoopConfig{
		Base: dcpi.Config{Workload: "classify", Scale: 0.25, Seed: 3},
		Run:  r.Run,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "continuousopt: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("optimizing %s\n", res.Image)
	fmt.Printf("baseline:  %8d cycles  CPI %.3f  %d I-cache misses\n",
		res.Baseline.Cycles, res.BaselineCPI(), res.Baseline.ICacheMisses)
	for i, it := range res.Iters {
		fmt.Printf("iter %d:    %8d cycles  CPI %.3f  %d I-cache misses",
			i, it.Stats.Cycles, it.CPI(), it.Stats.ICacheMisses)
		if it.Improved {
			fmt.Print("  (kept)")
		} else {
			fmt.Print("  (reverted)")
		}
		fmt.Println()
		for _, c := range it.Plan.Changes {
			fmt.Printf("           rewrote %s: %d branch(es) inverted, %d br added, %d br removed\n",
				c.Name, c.Inverted, c.AddedBrs, c.RemovedBrs)
		}
		if it.Plan.Moved {
			fmt.Println("           procedures re-placed hottest-first")
		}
	}
	fmt.Println()
	if res.Converged {
		fmt.Printf("converged: speedup %.2fx, I-cache misses %d -> %d\n",
			res.Speedup(), res.Baseline.ICacheMisses,
			res.Iters[res.Best].Stats.ICacheMisses)
	} else {
		fmt.Printf("iteration budget reached: speedup %.2fx\n", res.Speedup())
	}

	if res.Best < 0 || res.Speedup() <= 1 {
		fmt.Fprintln(os.Stderr, "unexpected: no improvement")
		os.Exit(1)
	}
	fmt.Println("\n(the paper's §3 mgrid anecdote found 15% the same way: profile,")
	fmt.Println(" pinpoint, transform, verify — continuously, in the background)")
}
