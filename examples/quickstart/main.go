// Quickstart: assemble a small program, run it on the simulated Alpha-like
// machine under continuous profiling, and analyze where its cycles went.
//
// This example wires the pieces together by hand (loader, machine, driver,
// daemon) to show the library's composition; the higher-level dcpi.Run does
// all of this for the built-in workloads.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"dcpi/internal/alpha"
	"dcpi/internal/analysis"
	"dcpi/internal/daemon"
	"dcpi/internal/dcpi"
	"dcpi/internal/driver"
	"dcpi/internal/image"
	"dcpi/internal/loader"
	"dcpi/internal/sim"
	"dcpi/internal/workload"
)

// A program with two behaviours: a dependent multiply chain (static FU
// stalls) and a pointer-chasing loop (dynamic D-cache stalls).
const program = `
main:
	lda  sp, -16(sp)
	stq  ra, 0(sp)
	bsr  ra, mulchain
	bsr  ra, chase
	ldq  ra, 0(sp)
	lda  sp, 16(sp)
	halt

mulchain:
	lda  t0, 30000(zero)
	lda  t1, 3(zero)
.m:
	mulq t1, t1, t2
	mulq t2, t1, t3
	and  t3, 0x7f, t1
	addq t1, 3, t1
	subq t0, 1, t0
	bne  t0, .m
	ret  (ra)

chase:
	bis  a0, zero, t1
	lda  t0, 60000(zero)
.c:
	ldq  t1, 0(t1)
	subq t0, 1, t0
	bne  t0, .c
	ret  (ra)
`

func main() {
	// 1. Build the machine: kernel, loader, CPU.
	kernel, abi := workload.Kernel()
	l := loader.New(kernel)

	// 2. The collection stack: device driver + daemon, wired as the
	//    machine's sample sink.
	drv := driver.New(driver.Config{NumCPUs: 1})
	dmn := daemon.New(daemon.Config{}, drv)
	l.Notify = dmn.HandleNotification

	m := sim.NewMachine(sim.Options{
		Loader: l,
		ABI:    abi,
		Seed:   42,
		Profile: sim.ProfileConfig{
			Mode:         sim.ModeCycles,
			Sink:         sink{drv, dmn},
			CyclesPeriod: sim.PeriodSpec{Base: 2048, Spread: 512},
		},
	})

	// 3. Load the program and give the chase loop a pointer ring.
	asm := alpha.MustAssemble(program)
	exec := image.New("quickstart", "/bin/quickstart", image.KindExecutable, asm)
	p, err := l.NewProcess("quickstart", exec)
	if err != nil {
		log.Fatal(err)
	}
	p.Regs.WriteI(alpha.RegA0, loader.HeapBase)
	// A ring of pointers striding 8KB apart: every load misses.
	const cells = 512
	for i := 0; i < cells; i++ {
		addr := loader.HeapBase + uint64(i)*8192
		next := loader.HeapBase + uint64((i+1)%cells)*8192
		p.Mem.Store(addr, 8, next)
	}
	m.Spawn(p)

	// 4. Run to completion and flush the profiles.
	wall := m.Run(1 << 40)
	if err := dmn.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d cycles, %d samples collected\n\n", wall, m.Stats().Samples)

	// 5. Where did the time go? Per-procedure profile first.
	var samples map[uint64]uint64
	for _, prof := range dmn.Profiles() {
		if prof.ImagePath == "/bin/quickstart" && prof.Event == sim.EvCycles {
			samples = prof.Counts
		}
	}
	for _, sym := range exec.Symbols {
		var n uint64
		for off, c := range samples {
			if off >= sym.Offset && off < sym.Offset+sym.Size {
				n += c
			}
		}
		fmt.Printf("%-10s %6d samples\n", sym.Name, n)
	}

	// 6. Instruction-level analysis of the chase loop: the analysis should
	//    blame the D-cache (and DTB) for the load's stall.
	code, base, err := exec.ProcCode("chase")
	if err != nil {
		log.Fatal(err)
	}
	pa := analysis.AnalyzeProc("chase", code, base, samples, nil, m.Model, 2304)
	fmt.Printf("\nchase: best-case %.2f CPI, actual %.2f CPI\n\n", pa.BestCaseCPI, pa.ActualCPI)
	dcpi.FormatCalc(os.Stdout, pa)
}

// sink adapts driver+daemon to the machine's sample interface.
type sink struct {
	drv *driver.Driver
	dmn *daemon.Daemon
}

func (s sink) Sample(sm sim.Sample) int64 {
	return s.drv.Record(sm.CPU, sm.PID, sm.PC, sm.Event)
}

func (s sink) Poll(cpu int, clock int64) int64 { return s.dmn.Poll(cpu, clock) }
