// Memcopy reproduces the paper's §3.2 walkthrough (Figure 2): profile the
// McCalpin-like copy benchmark and show dcpicalc's instruction-level view
// of the unrolled copy loop — the best-case vs actual CPI gap, the long
// store stalls, and the culprits (D-cache miss from the feeding load,
// write-buffer overflow, DTB miss, and the store/store slotting hazard).
//
//	go run ./examples/memcopy
package main

import (
	"fmt"
	"log"
	"os"

	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

func main() {
	fmt.Println("Profiling the copy loop (c[i] = a[i], unrolled 4x)...")
	r, err := dcpi.Run(dcpi.Config{
		Workload:     "mccalpin-assign",
		Mode:         sim.ModeCycles,
		Scale:        0.5,
		Seed:         7,
		CyclesPeriod: sim.PeriodSpec{Base: 2048, Spread: 512},
	})
	if err != nil {
		log.Fatal(err)
	}
	st := r.Machine.Stats()
	fmt.Printf("ran %d cycles; %d samples; %d write-buffer overflows\n\n",
		r.Wall, st.Samples, st.WBOverflows)

	pa, err := r.AnalyzeProc("/bin/mccalpin", "copyloop")
	if err != nil {
		log.Fatal(err)
	}
	dcpi.FormatCalc(os.Stdout, pa)

	fmt.Println()
	fmt.Println("Summary (the Figure 4 view of the same procedure):")
	fmt.Println()
	dcpi.FormatSummary(os.Stdout, pa)

	fmt.Println()
	fmt.Println("Reading the listing, as §3.2 does: the actual CPI is many times the")
	fmt.Println("best case, the stq instructions carry the stalls, and the culprits")
	fmt.Println("are the D-cache miss incurred by the ldq that produced the stored")
	fmt.Println("value (its address appears in the Culprit column), write-buffer")
	fmt.Println("overflow — the six-entry buffer cannot retire the writes fast")
	fmt.Println("enough — and possibly DTB misses at page crossings.")
}
