// Multiproc profiles a multiprocessor server workload (the AltaVista-like
// index search on a 4-CPU machine), showing full-system attribution: user
// code, shared state, and kernel time, with per-CPU driver statistics and
// the per-image breakdown dcpiprof -i gives.
//
//	go run ./examples/multiproc
package main

import (
	"fmt"
	"log"
	"os"

	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

func main() {
	fmt.Println("Profiling the AltaVista-like search server (8 workers, 4 CPUs)...")
	r, err := dcpi.Run(dcpi.Config{
		Workload:     "altavista",
		Mode:         sim.ModeDefault, // cycles + imiss
		Scale:        0.5,
		Seed:         3,
		CyclesPeriod: sim.PeriodSpec{Base: 2048, Spread: 512},
	})
	if err != nil {
		log.Fatal(err)
	}

	st := r.Machine.Stats()
	fmt.Printf("wall: %d cycles; %d instructions; %d samples\n\n", r.Wall, st.Instructions, st.Samples)

	fmt.Println("Per-CPU driver statistics (private hash tables, no cross-CPU")
	fmt.Println("synchronization — paper §4.2.3):")
	for cpu := 0; cpu < r.Driver.NumCPUs(); cpu++ {
		fmt.Printf("  cpu%d: %v\n", cpu, r.Driver.Stats(cpu))
	}

	fmt.Println("\nPer-procedure profile (note the kernel time from request I/O):")
	fmt.Println()
	dcpi.FormatProcList(os.Stdout, r, 12)

	// Drill into the hottest user procedure.
	rows := r.ProcRows()
	for _, row := range rows {
		if row.ImagePath == "/usr/bin/altavista" {
			pa, err := r.AnalyzeProc(row.ImagePath, row.Procedure)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nStall summary for %s (the hottest user procedure):\n\n", row.Procedure)
			dcpi.FormatSummary(os.Stdout, pa)
			break
		}
	}

	dm := r.Daemon.Stats()
	fmt.Printf("\ndaemon: %d loadmap notifications, %.2f%% unknown samples\n",
		dm.Notifications, 100*dm.UnknownRate())
}
