// Command dcpieval regenerates the paper's tables and figures on the
// simulated machine (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	dcpieval -table 3            # Tables: 2, 3, 4, 5
//	dcpieval -fig 2              # Figures: 1-4, 6-10
//	dcpieval -ablation ht        # §5.4 hash-table design sweep
//	dcpieval -all                # everything
//	dcpieval -all -j 8           # ... with eight simulation workers
//	dcpieval -all -metrics-out m.json -trace-out t.json
//	                             # ... plus self-observability artifacts
//	dcpieval -all -cache-dir ~/.cache/dcpi
//	                             # persistent run cache: the second
//	                             # invocation skips every simulation
//	dcpieval -all -shard 1/4     # simulate only shard 1 of 4, archiving
//	                             # results to dcpieval-shard-1-of-4.shard
//	dcpieval -all -merge-shards 'dcpieval-shard-*.shard'
//	                             # fold shard archives into full output
//
// Flags -runs and -scale trade time for confidence. All experiments share
// one simulation runner (internal/runner): sections run concurrently, -j
// bounds how many machine simulations execute at once (default GOMAXPROCS),
// and identical run configurations across sections are simulated exactly
// once. Sections stream to stdout in their fixed order as they complete, so
// long sweeps show progress; output is byte-identical for every -j value —
// and for cold, warm-cache, and merged-shard invocations alike.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dcpi/internal/dcpi"
	"dcpi/internal/eval"
	"dcpi/internal/obs"
	"dcpi/internal/pipeline"
	"dcpi/internal/runcache"
	"dcpi/internal/runner"
)

// section is one independently runnable report: it renders into w and all
// its simulations go through the shared runner inside eval.Options.
type section struct {
	name string
	fn   func(w io.Writer) error
}

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate a table (2-5)")
		fig      = flag.Int("fig", 0, "regenerate a figure (1-4, 6-10)")
		ablation = flag.String("ablation", "", "run an ablation: ht, loss")
		all      = flag.Bool("all", false, "regenerate everything")
		runs     = flag.Int("runs", 0, "runs per configuration (default 5)")
		scale    = flag.Float64("scale", 0, "workload scale (default 0.25)")
		jobs     = flag.Int("j", 0, "concurrent simulation workers (default GOMAXPROCS)")
		simcpus  = flag.String("simcpus", "0", "per-run simulation parallelism: 0/1 sequential, N goroutines, or \"auto\" (budget-limited); output is byte-identical either way")
		metrics  = flag.String("metrics-out", "", "write evaluation-engine self-measurements (runner cache, queue wait, run wall time) as metrics JSON to this file")
		traceOut = flag.String("trace-out", "", "write the runner/experiment event trace (Chrome trace format) to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of this run to this file")
		memProf  = flag.String("memprofile", "", "write a runtime/pprof heap profile at exit to this file")
		cacheDir = flag.String("cache-dir", os.Getenv("DCPI_CACHE_DIR"),
			"persistent run-cache directory (default $DCPI_CACHE_DIR); completed runs are stored there and reused by later invocations")
		cacheMax = flag.Int("cache-max-mb", 2048, "run-cache size cap in MiB before LRU eviction (with -cache-dir)")
		shard    = flag.String("shard", "", "simulate only shard i of N (format \"i/N\", 1-based) and archive results instead of printing output")
		shardOut = flag.String("shard-out", "", "shard archive path (default dcpieval-shard-<i>-of-<N>.shard)")
		merge    = flag.String("merge-shards", "", "comma-separated shard archives (globs allowed) to merge into full output")
	)
	flag.Parse()

	// The profiler profiles itself: -cpuprofile/-memprofile capture where
	// dcpieval's own cycles and allocations go (see docs/PERFORMANCE.md).
	// exit flushes both profiles on every path out of main.
	stopCPU := func() {}
	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpieval: %v\n", err)
			os.Exit(1)
		}
		stopCPU = stop
	}
	exit := func(code int) {
		stopCPU()
		if *memProf != "" {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintf(os.Stderr, "dcpieval: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}
		os.Exit(code)
	}

	var hooks obs.Hooks
	if *metrics != "" {
		hooks.Registry = obs.NewRegistry()
	}
	if *traceOut != "" {
		hooks.Tracer = obs.NewTracer(0)
		hooks.Tracer.NameProcess(obs.PIDRunner, "runner (simulation scheduler)")
		hooks.Tracer.NameProcess(obs.PIDEval, "eval (experiment sections)")
	}

	sched := runner.New(*jobs)
	sched.Obs = hooks
	if n, err := dcpi.ParseSimCPUs(*simcpus); err != nil {
		fmt.Fprintf(os.Stderr, "dcpieval: %v\n", err)
		exit(2)
	} else {
		sched.SimCPUs = n
	}

	// Persistent cache and sharding share one version stamp: entries are
	// invalid the moment the simulator's semantics or the snapshot layout
	// change, so a warm cache can never resurrect stale results.
	stamp := dcpi.CacheStamp()
	if *shard != "" && *merge != "" {
		fmt.Fprintln(os.Stderr, "dcpieval: -shard and -merge-shards are mutually exclusive")
		exit(2)
	}
	shardIdx, shardN, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpieval: %v\n", err)
		exit(2)
	}
	shardMode := shardN > 0
	if *cacheDir != "" {
		disk, err := runcache.Open(*cacheDir, runcache.Options{
			MaxBytes: int64(*cacheMax) << 20,
			Stamp:    stamp,
			Obs:      hooks,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpieval: opening run cache: %v\n", err)
			exit(1)
		}
		sched.Disk = disk
	}
	var shardEntries []runcache.Entry
	if shardMode {
		sched.Shard, sched.NumShards = shardIdx, shardN
		sched.ShardSink = func(key string, blob []byte) {
			shardEntries = append(shardEntries, runcache.Entry{Key: key, Blob: blob})
		}
	}
	if *merge != "" {
		preload, nfiles, err := loadShards(*merge, stamp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpieval: %v\n", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "dcpieval: merging %d runs from %d shard archives\n", len(preload), nfiles)
		sched.Preload = preload
	}
	o := eval.Options{Runs: *runs, Scale: *scale, Runner: sched, Obs: hooks}

	want := func(t, f int, abl string) bool {
		if *all {
			return true
		}
		if t != 0 && t == *table {
			return true
		}
		if f != 0 && f == *fig {
			return true
		}
		return abl != "" && abl == *ablation
	}

	var sections []section
	add := func(name string, fn func(io.Writer) error) {
		sections = append(sections, section{name, fn})
	}

	if want(2, 0, "") {
		add("Table 2: workloads and base runtimes", func(w io.Writer) error {
			rows, err := eval.Table2(o)
			if err != nil {
				return err
			}
			eval.FormatTable2(w, rows)
			return nil
		})
	}
	if want(3, 0, "") {
		add("Table 3: overall slowdown", func(w io.Writer) error {
			rows, err := eval.Table3(o)
			if err != nil {
				return err
			}
			eval.FormatTable3(w, rows)
			return nil
		})
	}
	if want(4, 0, "") {
		add("Table 4: time overhead components", func(w io.Writer) error {
			rows, err := eval.Table4(o)
			if err != nil {
				return err
			}
			eval.FormatTable4(w, rows)
			return nil
		})
	}
	if want(5, 0, "") {
		add("Table 5: space overhead", func(w io.Writer) error {
			rows, err := eval.Table5(o)
			if err != nil {
				return err
			}
			eval.FormatTable5(w, rows)
			return nil
		})
	}
	if want(0, 1, "") {
		add("Figure 1: dcpiprof on x11perf", func(w io.Writer) error { return eval.Fig1(o, w) })
	}
	if want(0, 2, "") {
		add("Figure 2: dcpicalc on the copy loop", func(w io.Writer) error { return eval.Fig2(o, w) })
	}
	if want(0, 3, "") || want(0, 4, "") {
		add("Figures 3 & 4: dcpistats and the smooth_ summary", func(w io.Writer) error {
			results, err := eval.Fig3(o, figWriter(w, 3, *fig, *all))
			if err != nil {
				return err
			}
			return eval.Fig4(o, figWriter(w, 4, *fig, *all), results)
		})
	}
	if want(0, 7, "") {
		add("Figure 7: frequency estimation for the copy loop", func(w io.Writer) error {
			return eval.Fig7(o, w)
		})
	}
	if want(0, 6, "") {
		add("Figure 6: running-time distributions", func(w io.Writer) error {
			series, err := eval.Fig6(o)
			if err != nil {
				return err
			}
			eval.FormatFig6(w, series)
			return nil
		})
	}
	if want(0, 8, "") {
		add("Figure 8: instruction-frequency accuracy", func(w io.Writer) error {
			res, err := eval.Fig8(o)
			if err != nil {
				return err
			}
			eval.FormatAccuracy(w, "Figure 8: distribution of errors in instruction frequencies", res)
			mr, err := eval.Fig8MultiRun(o, 4)
			if err != nil {
				return err
			}
			fmt.Fprintln(w)
			eval.FormatMultiRun(w, mr)
			return nil
		})
	}
	if want(0, 9, "") {
		add("Figure 9: edge-frequency accuracy", func(w io.Writer) error {
			res, err := eval.Fig9(o)
			if err != nil {
				return err
			}
			eval.FormatAccuracy(w, "Figure 9: distribution of errors in edge frequencies", res)
			ds, err := eval.Fig9DoubleSampling(o)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\nwith par.7 double sampling:       within 5%% %.1f%%, within 10%% %.1f%%\n",
				100*ds.Within5, 100*ds.Within10)
			interp, err := eval.Fig9Interpretation(o)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "with par.7 branch interpretation: within 5%% %.1f%%, within 10%% %.1f%%\n",
				100*interp.Within5, 100*interp.Within10)
			return nil
		})
	}
	if want(0, 10, "") {
		add("Figure 10: I-cache stalls vs IMISS events", func(w io.Writer) error {
			res, err := eval.Fig10(o)
			if err != nil {
				return err
			}
			eval.FormatFig10(w, res)
			return nil
		})
	}
	if want(0, 0, "ht") {
		add("Ablation: hash-table design space (§5.4)", func(w io.Writer) error {
			res, err := eval.AblationHT(o)
			if err != nil {
				return err
			}
			eval.FormatAblation(w, res)
			return nil
		})
	}
	if want(0, 0, "loss") {
		add("Ablation: daemon lag vs. sample loss (§4.2.3)", func(w io.Writer) error {
			res, err := eval.LossSweep(o)
			if err != nil {
				return err
			}
			eval.FormatLossSweep(w, res)
			return nil
		})
	}

	if len(sections) == 0 {
		flag.Usage()
		exit(2)
	}

	// Run every section concurrently — simulations are bounded by the
	// runner's -j workers and deduplicated across sections — and stream
	// each section's rendering to stdout in order as soon as it (and all
	// sections before it) complete. This keeps output byte-identical for
	// any -j while long sweeps still show progress section by section.
	type done struct {
		buf bytes.Buffer
		err error
		ch  chan struct{}
	}
	states := make([]*done, len(sections))
	for i, s := range sections {
		st := &done{ch: make(chan struct{})}
		states[i] = st
		go func(s section, st *done) {
			defer close(st.ch)
			fmt.Fprintf(&st.buf, "==== %s ====\n\n", s.name)
			if err := s.fn(&st.buf); err != nil {
				st.err = err
				return
			}
			fmt.Fprintln(&st.buf)
		}(s, st)
	}
	for i, st := range states {
		<-st.ch
		if shardMode {
			// Shard output is rendered from placeholder results for every
			// out-of-shard run, so it is meaningless: discard it, and treat
			// section errors as warnings (the merge pass re-simulates any
			// runs a section failed to reach).
			if st.err != nil {
				fmt.Fprintf(os.Stderr, "dcpieval: shard %d/%d: %s: %v (merge will re-simulate missing runs)\n",
					shardIdx, shardN, sections[i].name, st.err)
			}
			continue
		}
		os.Stdout.Write(st.buf.Bytes())
		if st.err != nil {
			fmt.Fprintf(os.Stderr, "dcpieval: %s: %v\n", sections[i].name, st.err)
			exit(1)
		}
	}
	st := sched.Stats()
	if shardMode {
		out := *shardOut
		if out == "" {
			out = fmt.Sprintf("dcpieval-shard-%d-of-%d.shard", shardIdx, shardN)
		}
		if err := runcache.WriteArchive(out, stamp, shardEntries); err != nil {
			fmt.Fprintf(os.Stderr, "dcpieval: writing shard archive: %v\n", err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "dcpieval: shard %d/%d: simulated %d of %d runs (%d skipped for other shards), wrote %d results to %s\n",
			shardIdx, shardN, st.Simulated, st.Requests(), st.ShardSkipped, len(shardEntries), out)
	}
	if st.MemHits > 0 || st.DiskHits > 0 {
		fmt.Fprintf(os.Stderr, "dcpieval: %d simulations run, %d duplicate requests served from memory, %d runs rehydrated from disk\n",
			st.Simulated, st.MemHits, st.DiskHits)
	}
	if *metrics != "" {
		sched.PublishMetrics()
		// Steady-state allocation view of the run itself: Go runtime
		// counters plus the block-schedule memo effectiveness. Dividing
		// runtime.mallocs by machine.instructions gives allocs per
		// simulated op (the figure the zero-allocation hot path drives
		// toward zero; see docs/PERFORMANCE.md).
		obs.PublishRuntimeMemStats(hooks.Registry)
		hits, misses, entries := pipeline.SchedCacheStats()
		hooks.Registry.Gauge("pipeline.schedcache.hits").Set(float64(hits))
		hooks.Registry.Gauge("pipeline.schedcache.misses").Set(float64(misses))
		hooks.Registry.Gauge("pipeline.schedcache.entries").Set(float64(entries))
		if err := hooks.Registry.WriteFile(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "dcpieval: writing %s: %v\n", *metrics, err)
			exit(1)
		}
		// Final machine-readable cache-stats line (satellite of the metrics
		// file, for pipelines that scrape stderr rather than read files).
		// mem_hits counts single-flight dedup within this process,
		// disk_hits counts runs rehydrated from -cache-dir or preloaded
		// shard archives, shard_skipped counts runs left to other shards.
		stats := map[string]any{
			"simulated":     st.Simulated,
			"mem_hits":      st.MemHits,
			"disk_hits":     st.DiskHits,
			"shard_skipped": st.ShardSkipped,
			"dedup_rate": func() float64 {
				if st.Simulated+st.MemHits == 0 {
					return 0
				}
				return float64(st.MemHits) / float64(st.Simulated+st.MemHits)
			}(),
			"hit_rate": func() float64 {
				if st.Requests() == 0 {
					return 0
				}
				return float64(st.MemHits+st.DiskHits) / float64(st.Requests())
			}(),
			"workers": sched.Workers(),
		}
		if sched.Disk != nil {
			ds := sched.Disk.Stats()
			stats["cache_dir_bytes"] = sched.Disk.SizeBytes()
			stats["cache_dir_evictions"] = ds.Evictions
			stats["cache_dir_quarantined"] = ds.Quarantined
		}
		line, _ := json.Marshal(stats)
		fmt.Fprintf(os.Stderr, "dcpieval-cache-stats %s\n", line)
	}
	if *traceOut != "" {
		if err := hooks.Tracer.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "dcpieval: writing %s: %v\n", *traceOut, err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "dcpieval: wrote %d trace events to %s (open in ui.perfetto.dev)\n",
			hooks.Tracer.Len(), *traceOut)
	}
	exit(0)
}

// parseShard parses "i/N" into (i, N); an empty spec returns (0, 0).
func parseShard(spec string) (idx, n int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(spec, "%d/%d", &idx, &n); err != nil {
		return 0, 0, fmt.Errorf("invalid -shard %q (want \"i/N\", e.g. 2/4)", spec)
	}
	if n < 1 || idx < 1 || idx > n {
		return 0, 0, fmt.Errorf("invalid -shard %q: need 1 <= i <= N", spec)
	}
	return idx, n, nil
}

// loadShards reads every archive named by the comma-separated list (each
// element may be a glob) and returns the union of their entries keyed by
// content key. Archives must carry this binary's version stamp; later
// archives win on duplicate keys (the blobs are identical by construction
// — simulation is deterministic in the key).
func loadShards(list, stamp string) (map[string][]byte, int, error) {
	preload := make(map[string][]byte)
	nfiles := 0
	for _, pat := range strings.Split(list, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		paths, err := filepath.Glob(pat)
		if err != nil {
			return nil, 0, fmt.Errorf("bad -merge-shards pattern %q: %v", pat, err)
		}
		if len(paths) == 0 {
			return nil, 0, fmt.Errorf("-merge-shards: no files match %q", pat)
		}
		for _, path := range paths {
			_, entries, err := runcache.ReadArchive(path, stamp)
			if err != nil {
				return nil, 0, err
			}
			for _, e := range entries {
				preload[e.Key] = e.Blob
			}
			nfiles++
		}
	}
	return preload, nfiles, nil
}

// figWriter suppresses one of the two combined figures when only the other
// was requested.
func figWriter(w io.Writer, figNo, requested int, all bool) io.Writer {
	if all || requested == figNo {
		return w
	}
	return io.Discard
}
