// Command dcpieval regenerates the paper's tables and figures on the
// simulated machine (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	dcpieval -table 3            # Tables: 2, 3, 4, 5
//	dcpieval -fig 2              # Figures: 1, 2, 3, 4, 6, 8, 9, 10
//	dcpieval -ablation ht        # §5.4 hash-table design sweep
//	dcpieval -all                # everything
//
// Flags -runs and -scale trade time for confidence.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dcpi/internal/eval"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate a table (2-5)")
		fig      = flag.Int("fig", 0, "regenerate a figure (1-4, 6-10)")
		ablation = flag.String("ablation", "", "run an ablation: ht")
		all      = flag.Bool("all", false, "regenerate everything")
		runs     = flag.Int("runs", 0, "runs per configuration (default 5)")
		scale    = flag.Float64("scale", 0, "workload scale (default 0.25)")
	)
	flag.Parse()

	o := eval.Options{Runs: *runs, Scale: *scale}
	w := os.Stdout

	run := func(name string, f func() error) {
		fmt.Fprintf(w, "==== %s ====\n\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "dcpieval: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}

	any := false
	want := func(t, f int, abl string) bool {
		if *all {
			return true
		}
		if t != 0 && t == *table {
			return true
		}
		if f != 0 && f == *fig {
			return true
		}
		return abl != "" && abl == *ablation
	}

	if want(2, 0, "") {
		any = true
		run("Table 2: workloads and base runtimes", func() error {
			rows, err := eval.Table2(o)
			if err != nil {
				return err
			}
			eval.FormatTable2(w, rows)
			return nil
		})
	}
	if want(3, 0, "") {
		any = true
		run("Table 3: overall slowdown", func() error {
			rows, err := eval.Table3(o)
			if err != nil {
				return err
			}
			eval.FormatTable3(w, rows)
			return nil
		})
	}
	if want(4, 0, "") {
		any = true
		run("Table 4: time overhead components", func() error {
			rows, err := eval.Table4(o)
			if err != nil {
				return err
			}
			eval.FormatTable4(w, rows)
			return nil
		})
	}
	if want(5, 0, "") {
		any = true
		run("Table 5: space overhead", func() error {
			rows, err := eval.Table5(o)
			if err != nil {
				return err
			}
			eval.FormatTable5(w, rows)
			return nil
		})
	}
	if want(0, 1, "") {
		any = true
		run("Figure 1: dcpiprof on x11perf", func() error { return eval.Fig1(o, w) })
	}
	if want(0, 2, "") {
		any = true
		run("Figure 2: dcpicalc on the copy loop", func() error { return eval.Fig2(o, w) })
	}
	if want(0, 3, "") || want(0, 4, "") {
		any = true
		run("Figures 3 & 4: dcpistats and the smooth_ summary", func() error {
			results, err := eval.Fig3(o, figWriter(w, 3, *fig, *all))
			if err != nil {
				return err
			}
			return eval.Fig4(o, figWriter(w, 4, *fig, *all), results)
		})
	}
	if want(0, 7, "") {
		any = true
		run("Figure 7: frequency estimation for the copy loop", func() error {
			return eval.Fig7(o, w)
		})
	}
	if want(0, 6, "") {
		any = true
		run("Figure 6: running-time distributions", func() error {
			series, err := eval.Fig6(o)
			if err != nil {
				return err
			}
			eval.FormatFig6(w, series)
			return nil
		})
	}
	if want(0, 8, "") {
		any = true
		run("Figure 8: instruction-frequency accuracy", func() error {
			res, err := eval.Fig8(o)
			if err != nil {
				return err
			}
			eval.FormatAccuracy(w, "Figure 8: distribution of errors in instruction frequencies", res)
			mr, err := eval.Fig8MultiRun(o, 4)
			if err != nil {
				return err
			}
			fmt.Fprintln(w)
			eval.FormatMultiRun(w, mr)
			return nil
		})
	}
	if want(0, 9, "") {
		any = true
		run("Figure 9: edge-frequency accuracy", func() error {
			res, err := eval.Fig9(o)
			if err != nil {
				return err
			}
			eval.FormatAccuracy(w, "Figure 9: distribution of errors in edge frequencies", res)
			ds, err := eval.Fig9DoubleSampling(o)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\nwith par.7 double sampling:       within 5%% %.1f%%, within 10%% %.1f%%\n",
				100*ds.Within5, 100*ds.Within10)
			interp, err := eval.Fig9Interpretation(o)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "with par.7 branch interpretation: within 5%% %.1f%%, within 10%% %.1f%%\n",
				100*interp.Within5, 100*interp.Within10)
			return nil
		})
	}
	if want(0, 10, "") {
		any = true
		run("Figure 10: I-cache stalls vs IMISS events", func() error {
			res, err := eval.Fig10(o)
			if err != nil {
				return err
			}
			eval.FormatFig10(w, res)
			return nil
		})
	}
	if want(0, 0, "ht") {
		any = true
		run("Ablation: hash-table design space (§5.4)", func() error {
			res, err := eval.AblationHT(o)
			if err != nil {
				return err
			}
			eval.FormatAblation(w, res)
			return nil
		})
	}

	if !any {
		flag.Usage()
		os.Exit(2)
	}
}

// figWriter suppresses one of the two combined figures when only the other
// was requested.
func figWriter(w io.Writer, figNo, requested int, all bool) io.Writer {
	if all || requested == figNo {
		return w
	}
	return io.Discard
}
