// Command dcpiprof displays the number of samples per procedure (or per
// image), sorted by decreasing sample count — the paper's Figure 1 tool.
//
// Usage:
//
//	dcpiprof -db ./dcpidb [-workload x11perf] [-n 20] [-images]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

func main() {
	var (
		dbDir = flag.String("db", "dcpidb", "profile database directory")
		wl    = flag.String("workload", "", "workload name (defaults to database metadata)")
		n     = flag.Int("n", 20, "maximum rows")
		byImg = flag.Bool("images", false, "aggregate by image instead of procedure")
	)
	flag.Parse()

	view, err := dcpi.OpenView(*dbDir, *wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpiprof: %v\n", err)
		os.Exit(1)
	}
	r := view.Result()

	if !*byImg {
		dcpi.FormatProcList(os.Stdout, r, *n)
		return
	}

	// Per-image aggregation.
	type row struct {
		img    string
		cycles uint64
	}
	agg := map[string]uint64{}
	for _, p := range r.Profiles() {
		if p.Event == sim.EvCycles {
			agg[p.ImagePath] += p.Total()
		}
	}
	var rows []row
	var total uint64
	for img, c := range agg {
		rows = append(rows, row{img, c})
		total += c
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cycles != rows[j].cycles {
			return rows[i].cycles > rows[j].cycles
		}
		return rows[i].img < rows[j].img
	})
	fmt.Printf("Total samples for event type cycles = %d\n\n", total)
	fmt.Printf("%9s %7s  %s\n", "cycles", "%", "image")
	for i, rw := range rows {
		if *n > 0 && i >= *n {
			break
		}
		fmt.Printf("%9d %6.2f%%  %s\n", rw.cycles, 100*float64(rw.cycles)/float64(total), rw.img)
	}
}
