// Command dcpistats analyzes the variation in profile data across multiple
// sample sets, isolating the procedures whose behaviour differs from run to
// run — the paper's Figure 3 tool (the wave5 variance study).
//
// Usage:
//
//	dcpistats [-workload wave5] [-n 15] db1 db2 db3 ...
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

func main() {
	var (
		wl = flag.String("workload", "", "workload name (defaults to database metadata)")
		n  = flag.Int("n", 15, "maximum rows")
	)
	flag.Parse()
	dbs := flag.Args()
	if len(dbs) < 2 {
		fmt.Fprintln(os.Stderr, "dcpistats: need at least two profile databases")
		os.Exit(2)
	}

	var (
		runs   []map[string]uint64
		totals []uint64
	)
	for _, dir := range dbs {
		view, err := dcpi.OpenView(dir, *wl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpistats: %s: %v\n", dir, err)
			os.Exit(1)
		}
		r := view.Result()
		m := r.ProcSampleMap()
		runs = append(runs, m)
		totals = append(totals, r.TotalSamples(sim.EvCycles))
	}
	rows := dcpi.StatsAcrossRuns(runs)
	dcpi.FormatStats(os.Stdout, rows, totals, *n)
}
