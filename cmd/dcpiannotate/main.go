// Command dcpiannotate prints a whole image's assembly annotated with
// per-instruction samples and estimated CPIs — the paper's §3 "annotate
// source and assembly code with samples" tool, over every procedure of an
// image at once.
//
// Usage:
//
//	dcpiannotate -db ./dcpidb -image /bin/mccalpin [-event cycles]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dcpi/internal/alpha"
	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

func main() {
	var (
		dbDir = flag.String("db", "dcpidb", "profile database directory")
		wl    = flag.String("workload", "", "workload name (defaults to database metadata)")
		img   = flag.String("image", "", "image path")
		evStr = flag.String("event", "cycles", "event to annotate with")
	)
	flag.Parse()
	if *img == "" {
		fmt.Fprintln(os.Stderr, "dcpiannotate: -image is required")
		os.Exit(2)
	}
	ev, err := sim.ParseEvent(*evStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpiannotate: %v\n", err)
		os.Exit(2)
	}

	view, err := dcpi.OpenView(*dbDir, *wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpiannotate: %v\n", err)
		os.Exit(1)
	}
	im, ok := view.Loader.ImageByPath(*img)
	if !ok {
		fmt.Fprintf(os.Stderr, "dcpiannotate: image %q not known\n", *img)
		os.Exit(1)
	}
	r := view.Result()
	prof := r.Profile(*img, ev)
	counts := map[uint64]uint64{}
	if prof != nil {
		counts = prof.Counts
	}

	fmt.Printf("image %s, event %s, %d samples\n\n", *img, ev, total(counts))
	for _, sym := range im.Symbols {
		var procTotal uint64
		for off, n := range counts {
			if off >= sym.Offset && off < sym.Offset+sym.Size {
				procTotal += n
			}
		}
		fmt.Printf("%s:  (%d samples)\n", sym.Name, procTotal)
		if procTotal == 0 {
			fmt.Printf("    ... %d instructions, never sampled\n\n", sym.Size/alpha.InstBytes)
			continue
		}
		pa, err := view.AnalyzeOffline(*img, sym.Name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpiannotate: %s: %v\n", sym.Name, err)
			os.Exit(1)
		}
		for i := range pa.Insts {
			ia := &pa.Insts[i]
			cpi := ""
			switch {
			case ia.Paired:
				cpi = "(dual issue)"
			case math.IsInf(ia.CPI, 1):
				cpi = "?"
			case ia.CPI > 0:
				cpi = fmt.Sprintf("%.1fcy", ia.CPI)
			}
			fmt.Printf("  %06x %8d %12s  %s\n", ia.Offset, ia.Samples, cpi, ia.Inst.DisasmAt(ia.Offset))
		}
		fmt.Println()
	}
}

func total(m map[uint64]uint64) uint64 {
	var t uint64
	for _, n := range m {
		t += n
	}
	return t
}
