package main

import (
	"flag"
	"fmt"
	"os"

	"dcpi/internal/tsdb"
)

// compactMain runs one offline compaction pass over a store: merge raw
// segments into blocks, then (optionally) downsample blocks behind the
// raw-retention horizon. Safe against a concurrent reader; the scraping
// collector should be stopped (or use its own -compact-after) since the
// store has a single-writer design.
func compactMain(args []string) int {
	fs := flag.NewFlagSet("dcpicollect compact", flag.ExitOnError)
	var (
		dbDir        = fs.String("tsdb", "fleetdb", "time-series store directory")
		compactAfter = fs.Int("compact-after", 1, "merge a machine's raw segments once it has this many")
		rawRetention = fs.Uint64("raw-retention", 0, "newest epochs kept at raw fidelity (0 = everything)")
		downsample   = fs.Uint64("downsample", 0, "bucket width in epochs for blocks behind the horizon (0 = off, max 64)")
	)
	fs.Parse(args)
	store, err := tsdb.Open(*dbDir, tsdb.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicollect compact: %v\n", err)
		return 1
	}
	st, err := store.Compact(tsdb.CompactOptions{
		CompactAfter: *compactAfter,
		RawRetention: *rawRetention,
		Downsample:   *downsample,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicollect compact: %v\n", err)
		return 1
	}
	fmt.Printf("compacted %d segments into %d blocks (%d downsampled), %d -> %d bytes\n",
		st.SegmentsCompacted, st.BlocksWritten, st.BlocksDownsampled, st.BytesBefore, st.BytesAfter)
	return 0
}
