// Command dcpicollect is the fleet side of continuous profiling: it
// scrapes dcpid exposition endpoints (-listen) into a labeled time-series
// profile store and answers fleet-wide queries over it — which image burns
// the most cycles across the fleet, how an image's CPI moved over the last
// K epochs, and what shifted between two time windows.
//
// Usage:
//
//	dcpicollect -targets m00=http://127.0.0.1:9111,m01=... -tsdb ./fleetdb
//	dcpicollect -targets ... -tsdb ./fleetdb -once
//	dcpicollect query range -tsdb ./fleetdb -image /usr/bin/app -last 20
//	dcpicollect query top   -server http://127.0.0.1:9200 -n 10
//	dcpicollect query delta -tsdb ./fleetdb -a 1-100 -b 101-200
//	dcpicollect compact -tsdb ./fleetdb -raw-retention 100 -downsample 10
//	dcpicollect fleet -machines 16 -epochs 200 -tsdb ./fleetdb
//
// The scrape loop runs until SIGINT/SIGTERM (graceful: the round in flight
// finishes, the store is already durable per append) or, with -once, for a
// single round. -listen serves the query API (see internal/collect).
// `fleet` runs the end-to-end demo: a simulated fleet, a scraper, the
// queries, and a ground-truth check of every answer against the
// per-machine profile databases.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dcpi/internal/collect"
	"dcpi/internal/obs"
	"dcpi/internal/tsdb"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "query":
			os.Exit(queryMain(os.Args[2:]))
		case "fleet":
			os.Exit(fleetMain(os.Args[2:]))
		case "compact":
			os.Exit(compactMain(os.Args[2:]))
		}
	}
	os.Exit(serveMain(os.Args[1:]))
}

// parseTargets parses "name=url,name=url".
func parseTargets(s string) ([]collect.Target, error) {
	if s == "" {
		return nil, fmt.Errorf("no targets (want -targets name=url,name=url)")
	}
	var out []collect.Target
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad target %q (want name=url)", part)
		}
		out = append(out, collect.Target{Name: name, URL: url})
	}
	return out, nil
}

func serveMain(args []string) int {
	fs := flag.NewFlagSet("dcpicollect", flag.ExitOnError)
	var (
		targets      = fs.String("targets", "", "comma-separated name=url scrape targets")
		dbDir        = fs.String("tsdb", "fleetdb", "time-series store directory")
		interval     = fs.Duration("interval", 5*time.Second, "scrape interval")
		once         = fs.Bool("once", false, "scrape a single round and exit")
		listen       = fs.String("listen", "", "serve the query API on this address (e.g. 127.0.0.1:9200)")
		timeout      = fs.Duration("timeout", 5*time.Second, "per-request scrape timeout")
		retries      = fs.Int("retries", 2, "retries per failed request")
		backoff      = fs.Duration("backoff", 100*time.Millisecond, "initial retry backoff (doubles per attempt)")
		parallel     = fs.Int("parallel", 4, "concurrent target scrapes")
		maxBytes     = fs.Int64("max-bytes", 0, "store size cap in bytes (0 = unlimited; oldest sources evicted first)")
		procs        = fs.Bool("procs", true, "ingest per-procedure breakdowns from targets that symbolize")
		compactAfter = fs.Int("compact-after", 0,
			"compact a machine's raw segments after this many accumulate (0 = never)")
		rawRetention = fs.Uint64("raw-retention", 0,
			"newest epochs kept at raw fidelity when downsampling (0 = everything)")
		downsample = fs.Uint64("downsample", 0,
			"bucket width in epochs for compacted blocks behind the raw-retention horizon (0 = off, max 64)")
	)
	fs.Parse(args)

	ts, err := parseTargets(*targets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicollect: %v\n", err)
		return 2
	}
	reg := obs.NewRegistry()
	store, err := tsdb.Open(*dbDir, tsdb.Options{MaxBytes: *maxBytes, Obs: obs.Hooks{Registry: reg}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicollect: %v\n", err)
		return 1
	}
	c := collect.New(collect.Config{
		Targets:  ts,
		Timeout:  *timeout,
		Retries:  *retries,
		Backoff:  *backoff,
		Parallel: *parallel,
		DB:       store,
		Procs:    *procs,
		Obs:      obs.Hooks{Registry: reg},
	})

	// maybeCompact runs after each scrape round when -compact-after is
	// set: merge any machine's accumulated raw segments into blocks, and
	// downsample blocks behind the raw-retention horizon.
	maybeCompact := func() {
		if *compactAfter <= 0 {
			return
		}
		st, err := store.Compact(tsdb.CompactOptions{
			CompactAfter: *compactAfter,
			RawRetention: *rawRetention,
			Downsample:   *downsample,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpicollect: compact: %v\n", err)
			return
		}
		if st.BlocksWritten > 0 || st.BlocksDownsampled > 0 {
			fmt.Fprintf(os.Stderr, "dcpicollect: compacted %d segments into %d blocks (%d downsampled), %d -> %d bytes\n",
				st.SegmentsCompacted, st.BlocksWritten, st.BlocksDownsampled, st.BytesBefore, st.BytesAfter)
		}
	}

	var srv *http.Server
	if *listen != "" {
		lis, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpicollect: %v\n", err)
			return 1
		}
		srv = &http.Server{Handler: collect.APIHandler(store, c, reg)}
		go srv.Serve(lis)
		fmt.Fprintf(os.Stderr, "dcpicollect: query API on http://%s\n", lis.Addr())
	}

	onRound := func(sum collect.RoundSummary) {
		fmt.Fprintf(os.Stderr, "dcpicollect: round: %d targets, %d failed, %d epochs, %d points\n",
			sum.Targets, sum.Failed, sum.EpochsIngested, sum.PointsIngested)
		maybeCompact()
	}
	if *once {
		sum := c.ScrapeOnce(context.Background())
		onRound(sum)
		if srv != nil {
			srv.Close()
		}
		if sum.Failed > 0 {
			return 1
		}
		return 0
	}

	// Graceful shutdown: the signal cancels the scrape loop's context, the
	// round in flight finishes (every ingested segment is already fsynced),
	// and the API server drains in-flight queries.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c.Run(ctx, *interval, onRound)
	if srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := srv.Shutdown(sctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpicollect: shutdown: %v\n", err)
			return 1
		}
	}
	fmt.Fprintln(os.Stderr, "dcpicollect: shutdown complete")
	return 0
}
