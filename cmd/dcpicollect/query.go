package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"

	"dcpi/internal/collect"
	"dcpi/internal/sim"
	"dcpi/internal/tsdb"
)

// queryMain answers fleet queries from a local store (-tsdb, opened
// read-only) or a running dcpicollect's API (-server). Output is
// deterministic text keyed by epochs, never wall-clock time; -json
// emits the API's JSON response instead, for scripting.
func queryMain(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "dcpicollect query: want a kind: range, top, or delta")
		return 2
	}
	kind := args[0]
	fs := flag.NewFlagSet("dcpicollect query "+kind, flag.ExitOnError)
	var (
		dbDir   = fs.String("tsdb", "", "query this store directory directly (read-only)")
		server  = fs.String("server", "", "query a running dcpicollect at this base URL")
		image   = fs.String("image", "", "image path (range, top -procs)")
		proc    = fs.String("proc", "", "narrow -image to one procedure (range)")
		procs   = fs.Bool("procs", false, "rank -image's procedures instead of images (top)")
		event   = fs.String("event", "cycles", "event type")
		from    = fs.Uint64("from", 0, "first epoch (inclusive; 0 = open)")
		to      = fs.Uint64("to", 0, "last epoch (inclusive; 0 = open)")
		last    = fs.Uint64("last", 0, "newest K epochs (overrides -from/-to)")
		n       = fs.Int("n", 10, "row limit (top, delta)")
		a       = fs.String("a", "", "before window F-T (delta)")
		b       = fs.String("b", "", "after window F-T (delta)")
		asJSON  = fs.Bool("json", false, "emit the JSON response instead of text")
		renderW = io.Writer(os.Stdout)
	)
	fs.Parse(args[1:])
	if (*dbDir == "") == (*server == "") {
		fmt.Fprintln(os.Stderr, "dcpicollect query: want exactly one of -tsdb or -server")
		return 2
	}

	var err error
	switch kind {
	case "range":
		err = queryRange(renderW, *dbDir, *server, *image, *proc, *event, *from, *to, *last, *asJSON)
	case "top":
		if *procs {
			err = queryTopProcs(renderW, *dbDir, *server, *image, *event, *from, *to, *last, *n, *asJSON)
		} else {
			err = queryTop(renderW, *dbDir, *server, *event, *from, *to, *last, *n, *asJSON)
		}
	case "delta":
		err = queryDelta(renderW, *dbDir, *server, *event, *a, *b, *n, *asJSON)
	default:
		err = fmt.Errorf("unknown query kind %q (want range, top, or delta)", kind)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicollect query: %v\n", err)
		return 1
	}
	return 0
}

func openRO(dir string) (*tsdb.DB, error) {
	return tsdb.Open(dir, tsdb.Options{ReadOnly: true})
}

// getAPI fetches one API path from the server into v.
func getAPI(server, path string, v any) error {
	resp, err := http.Get(server + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// writeJSON prints v the way the HTTP API does: two-space indent, one
// trailing newline.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// resolve turns CLI range flags into the API's query parameters.
func rangeParams(image, event string, from, to, last uint64) url.Values {
	q := url.Values{}
	if image != "" {
		q.Set("image", image)
	}
	q.Set("event", event)
	if last > 0 {
		q.Set("last", fmt.Sprint(last))
	} else {
		if from > 0 {
			q.Set("from", fmt.Sprint(from))
		}
		if to > 0 {
			q.Set("to", fmt.Sprint(to))
		}
	}
	return q
}

func localWindow(db *tsdb.DB, from, to, last uint64) (uint64, uint64) {
	if last > 0 {
		return collect.LastWindow(db, last)
	}
	return from, to
}

func queryRange(w io.Writer, dbDir, server, image, proc, event string, from, to, last uint64, asJSON bool) error {
	if image == "" {
		return fmt.Errorf("range: missing -image")
	}
	var resp collect.RangeResponse
	if server != "" {
		q := rangeParams(image, event, from, to, last)
		if proc != "" {
			q.Set("proc", proc)
		}
		if err := getAPI(server, "/query/range?"+q.Encode(), &resp); err != nil {
			return err
		}
	} else {
		db, err := openRO(dbDir)
		if err != nil {
			return err
		}
		ev, err := sim.ParseEvent(event)
		if err != nil {
			return err
		}
		from, to = localWindow(db, from, to, last)
		resp = collect.RangeResponse{
			Image: image, Proc: proc, Event: ev.String(), FromEpoch: from, ToEpoch: to,
			Rows: tsdb.RangeQueryProc(db, image, proc, ev, from, to),
		}
	}
	if asJSON {
		return writeJSON(w, resp)
	}
	renderRange(w, resp)
	return nil
}

func renderRange(w io.Writer, resp collect.RangeResponse) {
	what := resp.Image
	if resp.Proc != "" {
		what = resp.Image + ":" + resp.Proc
	}
	fmt.Fprintf(w, "%s %s, epochs %d-%d\n", what, resp.Event, resp.FromEpoch, resp.ToEpoch)
	fmt.Fprintf(w, "%7s %9s %12s %15s %15s %8s %7s\n",
		"epoch", "machines", "samples", "cycles", "insts", "cpi", "share%")
	for _, r := range resp.Rows {
		cpi := "-"
		if r.CPI > 0 {
			cpi = fmt.Sprintf("%.3f", r.CPI)
		}
		fmt.Fprintf(w, "%7d %9d %12d %15.0f %15d %8s %6.2f%%\n",
			r.Epoch, r.Machines, r.Samples, r.Cycles, r.Insts, cpi, r.SharePct)
	}
}

func queryTop(w io.Writer, dbDir, server, event string, from, to, last uint64, n int, asJSON bool) error {
	var resp collect.TopResponse
	if server != "" {
		q := rangeParams("", event, from, to, last)
		if err := getAPI(server, fmt.Sprintf("/query/top?%s&n=%d", q.Encode(), n), &resp); err != nil {
			return err
		}
	} else {
		db, err := openRO(dbDir)
		if err != nil {
			return err
		}
		ev, err := sim.ParseEvent(event)
		if err != nil {
			return err
		}
		from, to = localWindow(db, from, to, last)
		resp = collect.TopResponse{
			Event: ev.String(), FromEpoch: from, ToEpoch: to,
			Rows: tsdb.TopImages(db, ev, from, to, n),
		}
	}
	if asJSON {
		return writeJSON(w, resp)
	}
	renderTop(w, resp)
	return nil
}

func renderTop(w io.Writer, resp collect.TopResponse) {
	fmt.Fprintf(w, "top images by %s, epochs %d-%d\n", resp.Event, resp.FromEpoch, resp.ToEpoch)
	fmt.Fprintf(w, "%4s %15s %12s %7s  %s\n", "rank", "cycles", "samples", "share%", "image")
	for i, r := range resp.Rows {
		fmt.Fprintf(w, "%4d %15.0f %12d %6.2f%%  %s\n", i+1, r.Cycles, r.Samples, r.SharePct, r.Image)
	}
}

func queryTopProcs(w io.Writer, dbDir, server, image, event string, from, to, last uint64, n int, asJSON bool) error {
	if image == "" {
		return fmt.Errorf("top -procs: missing -image")
	}
	var resp collect.TopProcsResponse
	if server != "" {
		q := rangeParams(image, event, from, to, last)
		if err := getAPI(server, fmt.Sprintf("/query/top?%s&n=%d", q.Encode(), n), &resp); err != nil {
			return err
		}
	} else {
		db, err := openRO(dbDir)
		if err != nil {
			return err
		}
		ev, err := sim.ParseEvent(event)
		if err != nil {
			return err
		}
		from, to = localWindow(db, from, to, last)
		resp = collect.TopProcsResponse{
			Image: image, Event: ev.String(), FromEpoch: from, ToEpoch: to,
			Rows: tsdb.TopProcs(db, image, ev, from, to, n),
		}
	}
	if asJSON {
		return writeJSON(w, resp)
	}
	renderTopProcs(w, resp)
	return nil
}

func renderTopProcs(w io.Writer, resp collect.TopProcsResponse) {
	fmt.Fprintf(w, "top procedures of %s by %s, epochs %d-%d\n",
		resp.Image, resp.Event, resp.FromEpoch, resp.ToEpoch)
	fmt.Fprintf(w, "%4s %15s %12s %7s  %s\n", "rank", "cycles", "samples", "share%", "procedure")
	for i, r := range resp.Rows {
		fmt.Fprintf(w, "%4d %15.0f %12d %6.2f%%  %s\n", i+1, r.Cycles, r.Samples, r.SharePct, r.Proc)
	}
}

func queryDelta(w io.Writer, dbDir, server, event, a, b string, n int, asJSON bool) error {
	if a == "" || b == "" {
		return fmt.Errorf("delta: want -a F-T and -b F-T")
	}
	var resp collect.DeltaResponse
	if server != "" {
		q := url.Values{}
		q.Set("event", event)
		q.Set("a", a)
		q.Set("b", b)
		q.Set("n", fmt.Sprint(n))
		if err := getAPI(server, "/query/delta?"+q.Encode(), &resp); err != nil {
			return err
		}
	} else {
		db, err := openRO(dbDir)
		if err != nil {
			return err
		}
		ev, err := sim.ParseEvent(event)
		if err != nil {
			return err
		}
		aFrom, aTo, err := collect.ParseWindow(a)
		if err != nil {
			return fmt.Errorf("window a: %v", err)
		}
		bFrom, bTo, err := collect.ParseWindow(b)
		if err != nil {
			return fmt.Errorf("window b: %v", err)
		}
		resp = collect.DeltaResponse{
			Event: ev.String(), AFrom: aFrom, ATo: aTo, BFrom: bFrom, BTo: bTo,
			Rows: collect.ToDeltaRows(tsdb.TopDeltas(db, ev, aFrom, aTo, bFrom, bTo, n)),
		}
	}
	if asJSON {
		return writeJSON(w, resp)
	}
	renderDelta(w, resp)
	return nil
}

func renderDelta(w io.Writer, resp collect.DeltaResponse) {
	fmt.Fprintf(w, "%s share deltas, epochs %d-%d vs %d-%d\n",
		resp.Event, resp.AFrom, resp.ATo, resp.BFrom, resp.BTo)
	fmt.Fprintf(w, "%8s %8s %8s  %s\n", "before%", "after%", "delta", "image")
	for _, r := range resp.Rows {
		fmt.Fprintf(w, "%7.2f%% %7.2f%% %+7.2f%%  %s\n", r.BeforePct, r.AfterPct, r.DeltaPct, r.Image)
	}
}
