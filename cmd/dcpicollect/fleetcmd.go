package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"dcpi/internal/analysis"
	"dcpi/internal/collect"
	"dcpi/internal/fleet"
	"dcpi/internal/obs"
	"dcpi/internal/profiledb"
	"dcpi/internal/sim"
	"dcpi/internal/tsdb"
)

// fleetMain runs the end-to-end fleet demo: simulate a fleet of profiled
// machines, scrape them into one store (with one fault-injected target),
// answer the fleet queries, and verify every answer against the
// per-machine profile databases — the ground truth the scrape pipeline
// must reproduce exactly.
func fleetMain(args []string) int {
	fs := flag.NewFlagSet("dcpicollect fleet", flag.ExitOnError)
	var (
		machines  = fs.Int("machines", 16, "fleet size")
		epochs    = fs.Int("epochs", 200, "sealed epochs per machine")
		workloads = fs.String("workloads", "timeshare,x11perf", "comma-separated workloads, assigned round-robin")
		seed      = fs.Uint64("seed", 1, "fleet seed")
		scale     = fs.Float64("scale", 0.05, "base-run workload scale")
		dir       = fs.String("dir", "", "working directory (default: a temp dir, removed on exit)")
		rounds    = fs.Int("rounds", 8, "scrape rounds interleaved with epoch production")
		faultIdx  = fs.Int("fault-machine", 3, "index of the fault-injected machine (-1 = none)")
	)
	fs.Parse(args)

	root := *dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "dcpi-fleet-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpicollect fleet: %v\n", err)
			return 1
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	var wls []string
	for _, w := range splitComma(*workloads) {
		wls = append(wls, w)
	}
	fmt.Printf("fleet: %d machines x %d epochs, workloads %v, seed %d\n",
		*machines, *epochs, wls, *seed)

	start := time.Now()
	f, err := fleet.Start(fleet.Options{
		Dir:          root + "/machines",
		Machines:     *machines,
		Workloads:    wls,
		Seed:         *seed,
		Scale:        *scale,
		AnomalyAfter: *epochs / 2,
		FaultMachine: *faultIdx,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicollect fleet: %v\n", err)
		return 1
	}
	defer f.Close()

	reg := obs.NewRegistry()
	store, err := tsdb.Open(root+"/fleetdb", tsdb.Options{Obs: obs.Hooks{Registry: reg}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicollect fleet: %v\n", err)
		return 1
	}
	var targets []collect.Target
	for _, m := range f.Machines {
		targets = append(targets, collect.Target{Name: m.Name, URL: m.URL})
	}
	c := collect.New(collect.Config{
		Targets:  targets,
		Timeout:  10 * time.Second,
		Retries:  2,
		Backoff:  5 * time.Millisecond,
		Parallel: 8,
		DB:       store,
		Procs:    true,
		Obs:      obs.Hooks{Registry: reg},
	})

	// Produce epochs and scrape them in interleaved rounds, the way a real
	// deployment overlaps collection with the fleet's work.
	perRound := *epochs / *rounds
	produced := 0
	for r := 0; r < *rounds; r++ {
		n := perRound
		if r == *rounds-1 {
			n = *epochs - produced
		}
		if err := f.AdvanceEpochs(n); err != nil {
			fmt.Fprintf(os.Stderr, "dcpicollect fleet: %v\n", err)
			return 1
		}
		produced += n
		sum := c.ScrapeOnce(context.Background())
		fmt.Printf("round %2d: +%d epochs/machine; scraped %d epochs, %d points, %d failed targets\n",
			r+1, n, sum.EpochsIngested, sum.PointsIngested, sum.Failed)
	}
	// Catch-up rounds: the fault-injected target misses early rounds and
	// must backfill every sealed epoch it skipped.
	for extra := 0; extra < 10 && !allCaughtUp(store, f, uint64(*epochs)); extra++ {
		sum := c.ScrapeOnce(context.Background())
		fmt.Printf("catch-up: scraped %d epochs, %d points, %d failed targets\n",
			sum.EpochsIngested, sum.PointsIngested, sum.Failed)
	}
	fmt.Printf("scrape pipeline done in %.1fs\n", time.Since(start).Seconds())

	var totalFailures uint64
	for _, st := range c.Statuses() {
		totalFailures += st.Failures
		if st.Failures > 0 {
			fmt.Printf("target %s: %d scrapes, %d failures (fault-injected), last epoch %d\n",
				st.Name, st.Scrapes, st.Failures, st.LastEpoch)
		}
	}
	stats := store.Stats()
	fmt.Printf("store: %d segments, %d blocks, %d points, %d bytes\n",
		stats.Segments, stats.Blocks, stats.Points, stats.SizeBytes)

	// The fleet queries.
	image := f.AnomalyImage()
	lastK := uint64(*epochs / 8)
	rFrom, rTo := collect.LastWindow(store, lastK)
	rangeResp := collect.RangeResponse{
		Image: image, Event: sim.EvCycles.String(), FromEpoch: rFrom, ToEpoch: rTo,
		Rows: tsdb.RangeQuery(store, image, sim.EvCycles, rFrom, rTo),
	}
	fmt.Println()
	renderRange(os.Stdout, rangeResp)

	topResp := collect.TopResponse{
		Event: sim.EvCycles.String(), FromEpoch: 1, ToEpoch: uint64(*epochs),
		Rows: tsdb.TopImages(store, sim.EvCycles, 1, uint64(*epochs), 10),
	}
	fmt.Println()
	renderTop(os.Stdout, topResp)

	procsResp := collect.TopProcsResponse{
		Image: image, Event: sim.EvCycles.String(), FromEpoch: 1, ToEpoch: uint64(*epochs),
		Rows: tsdb.TopProcs(store, image, sim.EvCycles, 1, uint64(*epochs), 10),
	}
	fmt.Println()
	renderTopProcs(os.Stdout, procsResp)

	half := uint64(*epochs / 2)
	deltaRows := tsdb.TopDeltas(store, sim.EvCycles, 1, half, half+1, uint64(*epochs), 10)
	deltaResp := collect.DeltaResponse{
		Event: sim.EvCycles.String(), AFrom: 1, ATo: half, BFrom: half + 1, BTo: uint64(*epochs),
		Rows: collect.ToDeltaRows(deltaRows),
	}
	fmt.Println()
	renderDelta(os.Stdout, deltaResp)
	fmt.Println()

	// Ground-truth verification.
	pass := true
	check := func(name string, err error) {
		if err != nil {
			fmt.Printf("FAIL %-28s %v\n", name, err)
			pass = false
		} else {
			fmt.Printf("PASS %s\n", name)
		}
	}
	check("exactly-once ingestion", verifyExactlyOnce(store, f, uint64(*epochs)))
	check("per-machine point labels", verifyLabels(store, f, *epochs))
	check("per-procedure breakdowns", verifyProcs(store, f, *epochs))
	check("range query vs ground truth", verifyRange(store, f, rangeResp))
	check("top-delta vs ground truth", verifyDelta(f, deltaRows, 1, half, half+1, uint64(*epochs), 10))
	check("compaction byte-identity", verifyCompaction(store, image, rFrom, rTo, uint64(*epochs)))
	if totalFailures == 0 && *faultIdx >= 0 && *faultIdx < *machines {
		fmt.Printf("FAIL %-28s fault-injected target never failed a scrape\n", "fault/retry exercised")
		pass = false
	} else if *faultIdx >= 0 && *faultIdx < *machines {
		fmt.Printf("PASS fault/retry exercised (%d scrape failures, then full catch-up)\n", totalFailures)
	}
	if !pass {
		return 1
	}
	fmt.Println("fleet demo: all checks passed")
	return 0
}

func splitComma(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func allCaughtUp(store *tsdb.DB, f *fleet.Fleet, epochs uint64) bool {
	for _, m := range f.Machines {
		if store.MaxEpoch(m.Name) < epochs {
			return false
		}
	}
	return true
}

// verifyExactlyOnce checks every machine contributed each epoch exactly
// once: per (machine, epoch, image, proc, event) there must be exactly one
// point, across both image-level and per-procedure series.
func verifyExactlyOnce(store *tsdb.DB, f *fleet.Fleet, epochs uint64) error {
	for _, m := range f.Machines {
		pts := store.Select(tsdb.Matcher{Machine: m.Name, AnyEvent: true, AnyProc: true})
		seen := map[tsdb.Labels]map[uint64]int{}
		for _, pt := range pts {
			key := pt.Labels
			if seen[key] == nil {
				seen[key] = map[uint64]int{}
			}
			seen[key][pt.Epoch]++
			if seen[key][pt.Epoch] > 1 {
				return fmt.Errorf("%s epoch %d %s:%s/%s ingested twice",
					m.Name, pt.Epoch, pt.Image, pt.Proc, pt.Event)
			}
		}
		if got := store.MaxEpoch(m.Name); got != epochs {
			return fmt.Errorf("%s: max epoch %d, want %d", m.Name, got, epochs)
		}
	}
	return nil
}

// verifyProcs checks the per-procedure breakdown is complete: at three
// probe epochs, each (machine, image, event)'s procedure samples must sum
// to exactly the image-level samples (the exposition side buckets
// unsymbolized samples under "(unknown)" to keep this an identity).
func verifyProcs(store *tsdb.DB, f *fleet.Fleet, epochs int) error {
	probes := []uint64{1, uint64(epochs / 2), uint64(epochs)}
	sawProc := false
	for _, m := range f.Machines {
		for _, e := range probes {
			pts := store.Select(tsdb.Matcher{
				Machine: m.Name, AnyEvent: true, AnyProc: true,
				FromEpoch: e, ToEpoch: e,
			})
			imageSamples := map[tsdb.Labels]uint64{}
			procSamples := map[tsdb.Labels]uint64{}
			for _, pt := range pts {
				key := tsdb.Labels{Image: pt.Image, Event: pt.Event}
				if pt.Proc == "" {
					imageSamples[key] += pt.Samples
				} else {
					procSamples[key] += pt.Samples
					sawProc = true
				}
			}
			for key, want := range imageSamples {
				if got := procSamples[key]; got != want {
					return fmt.Errorf("%s epoch %d %s/%s: procedure samples sum to %d, image total %d",
						m.Name, e, key.Image, key.Event, got, want)
				}
			}
		}
	}
	if !sawProc {
		return fmt.Errorf("no per-procedure points ingested")
	}
	return nil
}

// verifyCompaction renders every fleet query, compacts all raw segments
// into blocks, and requires the re-rendered answers to be byte-identical —
// the store's core contract: compaction is invisible to queries.
func verifyCompaction(store *tsdb.DB, image string, rFrom, rTo, epochs uint64) error {
	render := func() string {
		var buf bytes.Buffer
		renderRange(&buf, collect.RangeResponse{
			Image: image, Event: sim.EvCycles.String(), FromEpoch: rFrom, ToEpoch: rTo,
			Rows: tsdb.RangeQuery(store, image, sim.EvCycles, rFrom, rTo),
		})
		renderTop(&buf, collect.TopResponse{
			Event: sim.EvCycles.String(), FromEpoch: 1, ToEpoch: epochs,
			Rows: tsdb.TopImages(store, sim.EvCycles, 1, epochs, 10),
		})
		renderTopProcs(&buf, collect.TopProcsResponse{
			Image: image, Event: sim.EvCycles.String(), FromEpoch: 1, ToEpoch: epochs,
			Rows: tsdb.TopProcs(store, image, sim.EvCycles, 1, epochs, 10),
		})
		half := epochs / 2
		renderDelta(&buf, collect.DeltaResponse{
			Event: sim.EvCycles.String(), AFrom: 1, ATo: half, BFrom: half + 1, BTo: epochs,
			Rows: collect.ToDeltaRows(tsdb.TopDeltas(store, sim.EvCycles, 1, half, half+1, epochs, 10)),
		})
		return buf.String()
	}
	before := render()
	st, err := store.Compact(tsdb.CompactOptions{CompactAfter: 1})
	if err != nil {
		return err
	}
	if st.BlocksWritten == 0 {
		return fmt.Errorf("compaction wrote no blocks")
	}
	after := render()
	if before != after {
		return fmt.Errorf("query answers changed after compacting %d segments into %d blocks",
			st.SegmentsCompacted, st.BlocksWritten)
	}
	stats := store.Stats()
	fmt.Printf("compacted: %d segments -> %d blocks, store now %d bytes\n",
		st.SegmentsCompacted, st.BlocksWritten, stats.SizeBytes)
	return nil
}

// verifyLabels spot-checks that points carry the right machine label by
// comparing each machine's stored samples against its own database at
// three epochs.
func verifyLabels(store *tsdb.DB, f *fleet.Fleet, epochs int) error {
	probes := []int{1, epochs / 2, epochs}
	for _, m := range f.Machines {
		db, err := profiledb.OpenReader(m.DBDir)
		if err != nil {
			return fmt.Errorf("%s: %v", m.Name, err)
		}
		for _, e := range probes {
			profiles, err := db.ProfilesAt(e)
			if err != nil {
				return fmt.Errorf("%s epoch %d: %v", m.Name, e, err)
			}
			want := map[tsdb.Labels]uint64{}
			for _, p := range profiles {
				want[tsdb.Labels{Image: p.ImagePath, Event: p.Event}] += p.Total()
			}
			pts := store.Select(tsdb.Matcher{
				Machine: m.Name, AnyEvent: true,
				FromEpoch: uint64(e), ToEpoch: uint64(e),
			})
			got := map[tsdb.Labels]uint64{}
			for _, pt := range pts {
				got[tsdb.Labels{Image: pt.Image, Event: pt.Event}] += pt.Samples
			}
			if len(got) != len(want) {
				return fmt.Errorf("%s epoch %d: %d series in store, %d in database", m.Name, e, len(got), len(want))
			}
			for k, w := range want {
				if got[k] != w {
					return fmt.Errorf("%s epoch %d %s/%s: store %d, database %d",
						m.Name, e, k.Image, k.Event, got[k], w)
				}
			}
		}
	}
	return nil
}

// verifyRange recomputes every range row straight from the per-machine
// databases and requires the store's answer to match.
func verifyRange(store *tsdb.DB, f *fleet.Fleet, resp collect.RangeResponse) error {
	ev, err := sim.ParseEvent(resp.Event)
	if err != nil {
		return err
	}
	rows := map[uint64]*tsdb.RangeRow{}
	totalCycles := map[uint64]float64{}
	for _, m := range f.Machines {
		db, err := profiledb.OpenReader(m.DBDir)
		if err != nil {
			return err
		}
		for e := resp.FromEpoch; e <= resp.ToEpoch; e++ {
			profiles, err := db.ProfilesAt(int(e))
			if err != nil {
				return fmt.Errorf("%s epoch %d: %v", m.Name, e, err)
			}
			meta, ok, err := db.MetaAt(int(e))
			if err != nil || !ok {
				return fmt.Errorf("%s epoch %d: unsealed or unreadable meta (%v)", m.Name, e, err)
			}
			matched := false
			for _, p := range profiles {
				if p.Event == ev {
					totalCycles[e] += float64(p.Total()) * meta.CyclesPeriod
				}
				if p.ImagePath != resp.Image || p.Event != ev {
					continue
				}
				matched = true
				row := rows[e]
				if row == nil {
					row = &tsdb.RangeRow{Epoch: e}
					rows[e] = row
				}
				row.Samples += p.Total()
				row.Cycles += float64(p.Total()) * meta.CyclesPeriod
				row.Insts += meta.ImageInsts[resp.Image]
			}
			if matched {
				rows[e].Machines++
			}
		}
	}
	if len(rows) != len(resp.Rows) {
		return fmt.Errorf("%d epochs with data in databases, %d rows in answer", len(rows), len(resp.Rows))
	}
	for _, got := range resp.Rows {
		want := rows[got.Epoch]
		if want == nil {
			return fmt.Errorf("epoch %d in answer but not in databases", got.Epoch)
		}
		if got.Samples != want.Samples || got.Insts != want.Insts || got.Machines != want.Machines {
			return fmt.Errorf("epoch %d: store (samples %d, insts %d, machines %d) vs ground truth (%d, %d, %d)",
				got.Epoch, got.Samples, got.Insts, got.Machines, want.Samples, want.Insts, want.Machines)
		}
		if !closeEnough(got.Cycles, want.Cycles) {
			return fmt.Errorf("epoch %d: cycles %.2f vs ground truth %.2f", got.Epoch, got.Cycles, want.Cycles)
		}
		wantCPI := 0.0
		if want.Insts > 0 {
			wantCPI = want.Cycles / float64(want.Insts)
		}
		if !closeEnough(got.CPI, wantCPI) {
			return fmt.Errorf("epoch %d: CPI %.4f vs ground truth %.4f", got.Epoch, got.CPI, wantCPI)
		}
		wantShare := 0.0
		if totalCycles[got.Epoch] > 0 {
			wantShare = 100 * want.Cycles / totalCycles[got.Epoch]
		}
		if !closeEnough(got.SharePct, wantShare) {
			return fmt.Errorf("epoch %d: share %.4f%% vs ground truth %.4f%%", got.Epoch, got.SharePct, wantShare)
		}
	}
	return nil
}

// verifyDelta recomputes the two windows' per-image sample totals from the
// databases, runs the same share-delta analysis, and requires identical
// rankings.
func verifyDelta(f *fleet.Fleet, got []analysis.DeltaRow, aFrom, aTo, bFrom, bTo uint64, n int) error {
	window := func(from, to uint64) (map[string]uint64, error) {
		out := map[string]uint64{}
		for _, m := range f.Machines {
			db, err := profiledb.OpenReader(m.DBDir)
			if err != nil {
				return nil, err
			}
			for e := from; e <= to; e++ {
				profiles, err := db.ProfilesAt(int(e))
				if err != nil {
					return nil, fmt.Errorf("%s epoch %d: %v", m.Name, e, err)
				}
				for _, p := range profiles {
					if p.Event == sim.EvCycles {
						out[p.ImagePath] += p.Total()
					}
				}
			}
		}
		return out, nil
	}
	before, err := window(aFrom, aTo)
	if err != nil {
		return err
	}
	after, err := window(bFrom, bTo)
	if err != nil {
		return err
	}
	want := analysis.ShareDeltas(before, after)
	if n < len(want) {
		want = want[:n]
	}
	if len(got) != len(want) {
		return fmt.Errorf("%d rows vs ground truth %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name ||
			!closeEnough(got[i].BeforePct, want[i].BeforePct) ||
			!closeEnough(got[i].AfterPct, want[i].AfterPct) {
			return fmt.Errorf("row %d: %+v vs ground truth %+v", i, got[i], want[i])
		}
	}
	return nil
}

// closeEnough absorbs float summation-order differences between the store
// aggregation and the ground-truth recomputation.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
