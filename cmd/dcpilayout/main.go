// Command dcpilayout rewrites a procedure's basic-block layout using its
// profile (hot-path straightening with branch-sense inversion) and prints
// the optimized assembly — the §7 "continuous optimization" consumer as a
// standalone tool (the Spike/OM role).
//
// Usage:
//
//	dcpilayout -db ./dcpidb -image /usr/bin/compress -proc main
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpi/internal/alpha"
	"dcpi/internal/dcpi"
	"dcpi/internal/optimize"
)

func main() {
	var (
		dbDir = flag.String("db", "dcpidb", "profile database directory")
		wl    = flag.String("workload", "", "workload name (defaults to database metadata)")
		img   = flag.String("image", "", "image path")
		proc  = flag.String("proc", "", "procedure name")
		quiet = flag.Bool("q", false, "print only the rewrite statistics")
	)
	flag.Parse()
	if *img == "" || *proc == "" {
		fmt.Fprintln(os.Stderr, "dcpilayout: -image and -proc are required")
		os.Exit(2)
	}

	view, err := dcpi.OpenView(*dbDir, *wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpilayout: %v\n", err)
		os.Exit(1)
	}
	pa, err := view.AnalyzeOffline(*img, *proc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpilayout: %v\n", err)
		os.Exit(1)
	}
	res, err := optimize.ReorderProcedure(pa)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpilayout: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %d blocks re-laid as %v\n", *proc, len(res.Order), res.Order)
	fmt.Printf("branches inverted: %d, br removed: %d, br added: %d (%d -> %d instructions)\n",
		res.Inverted, res.RemovedBranches, res.AddedBranches, len(pa.Graph.Code), len(res.Code))
	if *quiet {
		return
	}
	fmt.Println("\noptimized layout:")
	fmt.Print(alpha.Listing(res.Code, pa.BaseOffset))
}
