// Command dcpix gathers exact per-instruction execution counts and branch
// directions by instrumented execution — the pixie/dcpix ground-truth role
// used to validate the analysis tools (paper §6.2).
//
// Usage:
//
//	dcpix -workload compress [-scale 1] [-image /usr/bin/compress] [-insts]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dcpi/internal/alpha"
	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
	"dcpi/internal/workload"
)

func main() {
	var (
		wl    = flag.String("workload", "", "workload to run ("+strings.Join(workload.Names(), ", ")+")")
		scale = flag.Float64("scale", 1.0, "workload scale factor")
		seed  = flag.Uint64("seed", 1, "run seed")
		img   = flag.String("image", "", "restrict output to one image path")
		insts = flag.Bool("insts", false, "print per-instruction counts (default: per procedure)")
	)
	flag.Parse()
	if *wl == "" {
		flag.Usage()
		os.Exit(2)
	}

	r, err := dcpi.Run(dcpi.Config{
		Workload:     *wl,
		Scale:        *scale,
		Seed:         *seed,
		Mode:         sim.ModeOff,
		CollectExact: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpix: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("dcpix: %s ran %d cycles\n\n", *wl, r.Wall)
	images := r.Loader.Images()
	sort.Slice(images, func(i, j int) bool { return images[i].Path < images[j].Path })
	for _, im := range images {
		if *img != "" && im.Path != *img {
			continue
		}
		exec := r.Exact.Exec[im.ID]
		taken := r.Exact.Taken[im.ID]
		if exec == nil {
			continue
		}
		fmt.Printf("image %s\n", im.Path)
		for _, sym := range im.Symbols {
			lo := sym.Offset / alpha.InstBytes
			hi := (sym.Offset + sym.Size) / alpha.InstBytes
			var total uint64
			for i := lo; i < hi; i++ {
				total += exec[i]
			}
			if total == 0 {
				continue
			}
			fmt.Printf("  %-28s %12d instruction executions\n", sym.Name, total)
			if *insts {
				for i := lo; i < hi; i++ {
					in := im.Code[i]
					line := fmt.Sprintf("    %06x %-26s %12d", i*alpha.InstBytes, in.DisasmAt(i*alpha.InstBytes), exec[i])
					if in.Op.IsCondBranch() {
						line += fmt.Sprintf("  taken %d", taken[i])
					}
					fmt.Println(line)
				}
			}
		}
	}
}
