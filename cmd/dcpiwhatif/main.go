// Command dcpiwhatif runs hardware sensitivity sweeps and scores the §6
// culprit analysis against causal ground truth (internal/whatif, see
// docs/WHATIF.md).
//
// Usage:
//
//	dcpiwhatif                                # default grid, compress + li
//	dcpiwhatif -workloads gcc -scale 0.25     # one workload, bigger run
//	dcpiwhatif -grid dcache2x,memlat2x        # a subset of the grid
//	dcpiwhatif -list                          # show the available grid points
//	dcpiwhatif -json report.json              # machine-readable reports
//	dcpiwhatif -cache-dir ~/.cache/dcpi       # reruns decode instead of simulating
//
// Every grid point is a full machine simulation; -j bounds how many run
// concurrently and -cache-dir persists results across invocations (the
// same cache dcpieval uses — a sweep re-run after an unrelated evaluation
// is free). A final "dcpiwhatif-cache-stats {...}" line on stderr reports
// how runs were resolved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dcpi/internal/dcpi"
	"dcpi/internal/runcache"
	"dcpi/internal/runner"
	"dcpi/internal/whatif"
)

func main() {
	var (
		workloads = flag.String("workloads", "compress,li", "comma-separated workloads to sweep")
		scale     = flag.Float64("scale", 0.1, "workload scale (1.0 = full size)")
		seed      = flag.Uint64("seed", 1, "baseline seed (page placement and sampling)")
		grid      = flag.String("grid", "", "comma-separated grid points (default: all; see -list)")
		list      = flag.Bool("list", false, "list the grid points and exit")
		procs     = flag.Int("procs", 0, "hottest procedures analyzed per workload (default 3)")
		minMove   = flag.Float64("min-move", 0, "noise floor in cycles for counting movement (default: a few sampling periods)")
		jobs      = flag.Int("j", 0, "concurrent simulation workers (default GOMAXPROCS)")
		simcpus   = flag.String("simcpus", "0", "per-run simulation parallelism: 0/1 sequential, N goroutines, or \"auto\"")
		jsonOut   = flag.String("json", "", "write the reports as a JSON array to this file")
		cacheDir  = flag.String("cache-dir", os.Getenv("DCPI_CACHE_DIR"),
			"persistent run-cache directory (default $DCPI_CACHE_DIR), shared with dcpieval")
		cacheMax = flag.Int("cache-max-mb", 2048, "run-cache size cap in MiB before LRU eviction (with -cache-dir)")
	)
	flag.Parse()

	if *list {
		for _, p := range whatif.DefaultGrid() {
			tgt := "wall-clock only"
			if len(p.Targets) > 0 {
				var names []string
				for _, c := range p.Targets {
					names = append(names, c.String())
				}
				tgt = "tests " + strings.Join(names, ", ")
			}
			fmt.Printf("%-10s %-22s %s (%s)\n", p.Name, p.Spec, p.Desc, tgt)
		}
		return
	}

	points := whatif.DefaultGrid()
	if *grid != "" {
		var err error
		points, err = whatif.GridByNames(strings.Split(*grid, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpiwhatif: %v\n", err)
			os.Exit(2)
		}
	}

	sched := runner.New(*jobs)
	if n, err := dcpi.ParseSimCPUs(*simcpus); err != nil {
		fmt.Fprintf(os.Stderr, "dcpiwhatif: %v\n", err)
		os.Exit(2)
	} else {
		sched.SimCPUs = n
	}
	if *cacheDir != "" {
		disk, err := runcache.Open(*cacheDir, runcache.Options{
			MaxBytes: int64(*cacheMax) << 20,
			Stamp:    dcpi.CacheStamp(),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpiwhatif: opening run cache: %v\n", err)
			os.Exit(1)
		}
		sched.Disk = disk
	}

	var reports []*whatif.Report
	for i, w := range strings.Split(*workloads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		rep, err := whatif.Sweep(whatif.Options{
			Base:          dcpi.Config{Workload: w, Scale: *scale, Seed: *seed},
			Grid:          points,
			Runner:        sched,
			TopProcs:      *procs,
			MinMoveCycles: *minMove,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpiwhatif: %v\n", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		whatif.FormatReport(os.Stdout, rep)
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		fmt.Fprintln(os.Stderr, "dcpiwhatif: no workloads given")
		os.Exit(2)
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpiwhatif: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}

	// Machine-readable resolution summary, mirroring dcpieval-cache-stats:
	// the ci smoke asserts a warm rerun reports "simulated":0.
	st := sched.Stats()
	line, _ := json.Marshal(map[string]any{
		"simulated": st.Simulated,
		"mem_hits":  st.MemHits,
		"disk_hits": st.DiskHits,
		"workers":   sched.Workers(),
	})
	fmt.Fprintf(os.Stderr, "dcpiwhatif-cache-stats %s\n", line)
}
