// Command dcpisum summarizes where time is spent across an entire run — the
// percentage of cycles lost to D-cache misses, branch mispredicts, static
// slotting, and so on (the paper's §3 whole-program summary tool).
//
// Usage:
//
//	dcpisum -db ./dcpidb [-workload x11perf]
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpi/internal/dcpi"
)

func main() {
	var (
		dbDir = flag.String("db", "dcpidb", "profile database directory")
		wl    = flag.String("workload", "", "workload name (defaults to database metadata)")
	)
	flag.Parse()

	view, err := dcpi.OpenView(*dbDir, *wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpisum: %v\n", err)
		os.Exit(1)
	}
	ps, err := view.Result().Summarize()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpisum: %v\n", err)
		os.Exit(1)
	}
	dcpi.FormatProgramSummary(os.Stdout, ps)
}
