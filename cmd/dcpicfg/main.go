// Command dcpicfg emits a procedure's annotated control-flow graph in
// Graphviz DOT form: block execution estimates, CPIs, and edge frequencies
// from the profile — the modern form of the paper's "formatted Postscript
// output of annotated control-flow graphs" (§3).
//
// Usage:
//
//	dcpicfg -db ./dcpidb -image /bin/mccalpin -proc copyloop | dot -Tsvg > cfg.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpi/internal/dcpi"
)

func main() {
	var (
		dbDir = flag.String("db", "dcpidb", "profile database directory")
		wl    = flag.String("workload", "", "workload name (defaults to database metadata)")
		img   = flag.String("image", "", "image path")
		proc  = flag.String("proc", "", "procedure name")
	)
	flag.Parse()
	if *img == "" || *proc == "" {
		fmt.Fprintln(os.Stderr, "dcpicfg: -image and -proc are required")
		os.Exit(2)
	}

	view, err := dcpi.OpenView(*dbDir, *wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicfg: %v\n", err)
		os.Exit(1)
	}
	pa, err := view.AnalyzeOffline(*img, *proc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicfg: %v\n", err)
		os.Exit(1)
	}
	dcpi.FormatDOT(os.Stdout, pa)
}
