// Command dcpicalc calculates the cycles-per-instruction and execution
// frequency of a procedure and annotates every stall with its possible
// causes — the paper's Figure 2 listing and Figure 4 summary.
//
// Usage:
//
//	dcpicalc -db ./dcpidb -image /bin/mccalpin -proc copyloop [-summary]
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

func main() {
	var (
		dbDir   = flag.String("db", "dcpidb", "profile database directory")
		wl      = flag.String("workload", "", "workload name (defaults to database metadata)")
		img     = flag.String("image", "", "image path (e.g. /bin/mccalpin)")
		proc    = flag.String("proc", "", "procedure name (empty lists procedures)")
		summary = flag.Bool("summary", false, "print the stall summary instead of the listing")
	)
	flag.Parse()

	view, err := dcpi.OpenView(*dbDir, *wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicalc: %v\n", err)
		os.Exit(1)
	}

	if *img == "" {
		fmt.Fprintln(os.Stderr, "dcpicalc: -image required; images with samples:")
		for _, p := range view.Result().Profiles() {
			if p.Event == sim.EvCycles {
				fmt.Fprintf(os.Stderr, "  %s (%d samples)\n", p.ImagePath, p.Total())
			}
		}
		os.Exit(2)
	}
	if *proc == "" {
		im, ok := view.Loader.ImageByPath(*img)
		if !ok {
			fmt.Fprintf(os.Stderr, "dcpicalc: image %q not known\n", *img)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dcpicalc: -proc required; procedures in %s:\n", *img)
		for _, s := range im.Symbols {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(2)
	}

	pa, err := view.AnalyzeOffline(*img, *proc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpicalc: %v\n", err)
		os.Exit(1)
	}
	if *summary {
		dcpi.FormatSummary(os.Stdout, pa)
	} else {
		dcpi.FormatCalc(os.Stdout, pa)
	}
}
