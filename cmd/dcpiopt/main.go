// Command dcpiopt runs the paper's §7 continuous-optimization loop closed:
// profile a workload on the simulated machine, re-lay the hottest image
// from the profile (hot-path straightening, branch-sense inversion,
// hottest-first procedure placement), re-run with the rewritten image, and
// keep iterating while the machine's ground-truth counters actually
// improve. Every kept layout is validated by measurement, never assumed —
// the loop reverts any rewrite that regresses and stops at a layout fixed
// point.
//
// Usage:
//
//	dcpiopt -workload classify
//	dcpiopt -workload go -scale 0.05 -iters 8 -min-gain 0.02
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpi/internal/dcpi"
	"dcpi/internal/optimize"
	"dcpi/internal/runner"
)

func main() {
	var (
		wl      = flag.String("workload", "", "workload name (required)")
		img     = flag.String("image", "", "image path to optimize (default: hottest non-kernel image)")
		scale   = flag.Float64("scale", 0.25, "workload scale factor")
		seed    = flag.Uint64("seed", 3, "simulation seed")
		iters   = flag.Int("iters", 5, "maximum optimization iterations")
		minGain = flag.Float64("min-gain", 0, "exit nonzero unless speedup-1 reaches this fraction")
		quiet   = flag.Bool("q", false, "print only the final summary line")
	)
	flag.Parse()
	if *wl == "" {
		fmt.Fprintln(os.Stderr, "dcpiopt: -workload is required")
		os.Exit(2)
	}

	// The runner's content-keyed cache makes the loop's repeated
	// configurations free: re-profiling a reverted layout is a cache hit,
	// not a second simulation.
	r := runner.New(0)
	res, err := optimize.RunLoop(optimize.LoopConfig{
		Base:     dcpi.Config{Workload: *wl, Scale: *scale, Seed: *seed},
		Image:    *img,
		MaxIters: *iters,
		Run:      r.Run,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpiopt: %v\n", err)
		os.Exit(1)
	}

	if !*quiet {
		fmt.Printf("dcpiopt: optimizing %s (workload %s, scale %g, seed %d)\n",
			res.Image, *wl, *scale, *seed)
		fmt.Printf("baseline: cycles=%d CPI=%.3f imiss=%d mispredict=%d\n",
			res.Baseline.Cycles, res.BaselineCPI(),
			res.Baseline.ICacheMisses, res.Baseline.Mispredicts)
		for i, it := range res.Iters {
			var inv, add, rem int
			for _, c := range it.Plan.Changes {
				inv += c.Inverted
				add += c.AddedBrs
				rem += c.RemovedBrs
			}
			verdict := "kept"
			if !it.Improved {
				verdict = "reverted"
			}
			fmt.Printf("iter %d: rewrote %d proc(s) (inv=%d +br=%d -br=%d) moved=%v skips=%d\n",
				i, len(it.Plan.Changes), inv, add, rem, it.Plan.Moved, len(it.Plan.Skips))
			fmt.Printf("        cycles=%d (%+.1f%%) CPI=%.3f imiss=%d mispredict=%d  %s\n",
				it.Stats.Cycles,
				100*(float64(it.Stats.Cycles)/float64(res.Baseline.Cycles)-1),
				it.CPI(), it.Stats.ICacheMisses, it.Stats.Mispredicts, verdict)
		}
	}

	state := fmt.Sprintf("stopped after %d iteration(s) (iteration budget)", len(res.Iters))
	if res.Converged {
		state = fmt.Sprintf("converged after %d iteration(s)", len(res.Iters))
	}
	if res.Best < 0 {
		fmt.Printf("%s: no layout beat the baseline\n", state)
	} else {
		fmt.Printf("%s: speedup %.3fx (CPI %.3f -> %.3f, imiss %d -> %d)\n",
			state, res.Speedup(), res.BaselineCPI(), res.Iters[res.Best].CPI(),
			res.Baseline.ICacheMisses, res.Iters[res.Best].Stats.ICacheMisses)
	}

	if res.Speedup()-1 < *minGain {
		fmt.Fprintf(os.Stderr, "dcpiopt: speedup %.3fx below required gain %.3f\n",
			res.Speedup(), *minGain)
		os.Exit(1)
	}
}
