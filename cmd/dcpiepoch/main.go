// Command dcpiepoch manages a profile database's epochs: non-overlapping
// time intervals of samples, each in its own subdirectory (paper §4.3.3:
// "A new epoch can be initiated by a user-level command").
//
// Usage:
//
//	dcpiepoch -db ./dcpidb          # list epochs and their contents
//	dcpiepoch -db ./dcpidb -new     # start a fresh epoch
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpi/internal/profiledb"
)

func main() {
	var (
		dbDir = flag.String("db", "dcpidb", "profile database directory")
		start = flag.Bool("new", false, "start a new epoch")
	)
	flag.Parse()

	db, err := profiledb.Open(*dbDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpiepoch: %v\n", err)
		os.Exit(1)
	}

	if *start {
		if err := db.NewEpoch(); err != nil {
			fmt.Fprintf(os.Stderr, "dcpiepoch: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("started epoch %d\n", db.Epoch())
		return
	}

	fmt.Printf("database %s, current epoch %d\n", *dbDir, db.Epoch())
	if meta, ok, err := db.Meta(); err == nil && ok {
		fmt.Printf("  workload=%s mode=%s period=%.0f wall=%d cycles seed=%d\n",
			meta.Workload, meta.Mode, meta.CyclesPeriod, meta.WallCycles, meta.Seed)
	}
	profiles, err := db.Profiles()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpiepoch: %v\n", err)
		os.Exit(1)
	}
	for _, p := range profiles {
		fmt.Printf("  %-10s %10d samples  %s\n", p.Event, p.Total(), p.ImagePath)
	}
	if disk, err := db.DiskUsage(); err == nil {
		fmt.Printf("  total disk: %d bytes (all epochs)\n", disk)
	}
}
