// Command dcpid runs a workload on the simulated machine under continuous
// profiling and stores the collected profiles in an on-disk database — the
// role of the DCPI driver+daemon pair on a production system.
//
// Usage:
//
//	dcpid -workload x11perf -mode default -db ./dcpidb [-seed 1] [-scale 1]
//	dcpid -workload x11perf -stats-out metrics.json -trace-out trace.json
//	dcpid -workload x11perf -epochs 20 -listen 127.0.0.1:9111 -machine m00
//
// -stats-out writes the collection stack's self-measurements (the paper's
// Table 3-5 numbers: handler-cycle histogram, hash miss rate, evictions,
// daemon cycles/sample, database bytes) as a metrics JSON artifact;
// -trace-out writes a Chrome-trace-format JSON of the collection pipeline
// (openable in Perfetto). See docs/OBSERVABILITY.md.
//
// -epochs runs the workload repeatedly (seed+i per run), sealing one
// database epoch per run; -listen serves the database, live stats, and
// self-metrics over HTTP (internal/expo) during and after the runs, until
// SIGINT/SIGTERM triggers a graceful shutdown. A dcpicollect scraper
// pointed at -listen pulls each sealed epoch exactly once.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dcpi/internal/daemon"
	"dcpi/internal/dcpi"
	"dcpi/internal/expo"
	"dcpi/internal/obs"
	"dcpi/internal/sim"
	"dcpi/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "", "workload to run ("+strings.Join(workload.Names(), ", ")+")")
		mode     = flag.String("mode", "default", "profiling mode: cycles, default, mux")
		dbDir    = flag.String("db", "dcpidb", "profile database directory")
		seed     = flag.Uint64("seed", 1, "run seed (page placement + sampling)")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		period   = flag.Int64("period", 0, "cycles sampling period base (0 = paper default 60K-64K)")
		verbose  = flag.Bool("v", false, "print per-CPU driver statistics (to stderr)")
		perPID   = flag.String("perpid", "", "comma-separated PIDs to keep separate per-process profiles for (paper §4.3; workload PIDs start at 100)")
		statsOut = flag.String("stats-out", "", "write collection-stack self-measurements as metrics JSON to this file")
		traceOut = flag.String("trace-out", "", "write the collection-pipeline event trace (Chrome trace format) to this file")
		fault    = flag.String("fault", "", "inject daemon faults, e.g. 'stall=1M-3M,drain-latency=500K,crash-merge=1' (see docs/ROBUSTNESS.md)")
		buckets  = flag.Int("buckets", 0, "driver hash-table buckets (0 = default 4096)")
		overflow = flag.Int("overflow", 0, "driver overflow-buffer capacity in entries (0 = default 8192)")
		drainInt = flag.Int64("drain-interval", 0, "daemon drain interval in cycles (0 = default 2M)")
		mergeInt = flag.Int64("merge-interval", 0, "daemon disk-merge interval in cycles (0 = default 4M)")
		simcpus  = flag.String("simcpus", "0", "simulation parallelism: 0/1 sequential, N goroutines, or \"auto\" (budget-limited); output is byte-identical either way")
		cpuProf  = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of this run to this file")
		memProf  = flag.String("memprofile", "", "write a runtime/pprof heap profile at exit to this file")
		epochs   = flag.Int("epochs", 1, "number of profiled runs (one sealed database epoch each, seed+i per run)")
		listen   = flag.String("listen", "", "serve the profile database, live stats, and metrics over HTTP on this address (e.g. 127.0.0.1:9111); keeps serving after the runs until SIGINT/SIGTERM")
		machine  = flag.String("machine", "local", "machine label reported on the exposition endpoints")
		exact    = flag.Bool("exact", false, "collect exact per-image instruction counts (stored in epoch metadata; enables fleet CPI queries)")
	)
	flag.Parse()

	// -cpuprofile/-memprofile turn the profiler on itself (docs/TOOLS.md);
	// exit flushes both profiles on every path out of main.
	stopCPU := func() {}
	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpid: %v\n", err)
			os.Exit(1)
		}
		stopCPU = stop
	}
	exit := func(code int) {
		stopCPU()
		if *memProf != "" {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintf(os.Stderr, "dcpid: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}
		os.Exit(code)
	}
	if *wl == "" {
		flag.Usage()
		exit(2)
	}

	var m sim.Mode
	switch *mode {
	case "cycles":
		m = sim.ModeCycles
	case "default":
		m = sim.ModeDefault
	case "mux":
		m = sim.ModeMux
	default:
		fmt.Fprintf(os.Stderr, "dcpid: unknown mode %q\n", *mode)
		exit(2)
	}

	cfg := dcpi.Config{
		Workload:       *wl,
		Mode:           m,
		DBDir:          *dbDir,
		Seed:           *seed,
		Scale:          *scale,
		CollectExact:   *exact,
		DriverBuckets:  *buckets,
		DriverOverflow: *overflow,
		DrainInterval:  *drainInt,
		MergeInterval:  *mergeInt,
	}
	if n, err := dcpi.ParseSimCPUs(*simcpus); err != nil {
		fmt.Fprintf(os.Stderr, "dcpid: %v\n", err)
		exit(2)
	} else {
		cfg.SimCPUs = n
	}
	if *fault != "" {
		plan, err := daemon.ParseFaultPlan(*fault)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpid: %v\n", err)
			exit(2)
		}
		cfg.Fault = plan
	}
	if *perPID != "" {
		for _, f := range strings.Split(*perPID, ",") {
			var pid uint32
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &pid); err != nil {
				fmt.Fprintf(os.Stderr, "dcpid: bad -perpid entry %q\n", f)
				exit(2)
			}
			cfg.PerProcessPIDs = append(cfg.PerProcessPIDs, pid)
		}
	}
	if *period > 0 {
		cfg.CyclesPeriod = sim.PeriodSpec{Base: *period, Spread: *period / 16}
	}
	if *statsOut != "" {
		cfg.Obs.Registry = obs.NewRegistry()
	}
	if *traceOut != "" {
		cfg.Obs.Tracer = obs.NewTracer(0)
	}

	if *epochs < 1 {
		fmt.Fprintln(os.Stderr, "dcpid: -epochs must be >= 1")
		exit(2)
	}

	// -listen exposes the profile database, live stats, and self-metrics
	// while the runs proceed (and afterwards, until interrupted). The stats
	// snapshot is swapped atomically at epoch boundaries so the handlers
	// never race the simulation loop.
	var (
		snap  atomic.Pointer[expo.StatsSnapshot]
		srv   *http.Server
		sigCh chan os.Signal
	)
	snap.Store(&expo.StatsSnapshot{Machine: *machine, Workload: *wl, Running: true})
	if *listen != "" {
		if cfg.Obs.Registry == nil {
			cfg.Obs.Registry = obs.NewRegistry()
		}
		src := &expo.Source{
			Machine:  *machine,
			Workload: *wl,
			DBDir:    *dbDir,
			Registry: cfg.Obs.Registry,
			Stats:    func() expo.StatsSnapshot { return *snap.Load() },
		}
		// Symbolize against the workload's own images so scrapers can ask
		// for per-procedure breakdowns (?procs=1). Best-effort: a workload
		// that cannot be staged offline just serves image-level data.
		if ld, err := dcpi.SetupImages(*wl); err == nil {
			src.SymbolAt = func(image string, off uint64) (string, bool) {
				im, ok := ld.ImageByPath(image)
				if !ok {
					return "", false
				}
				sym, ok := im.SymbolAt(off)
				if !ok {
					return "", false
				}
				return sym.Name, true
			}
		} else {
			fmt.Fprintf(os.Stderr, "dcpid: no symbols for %s: %v\n", *wl, err)
		}
		lis, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpid: %v\n", err)
			exit(1)
		}
		srv = &http.Server{Handler: expo.Handler(src)}
		go srv.Serve(lis)
		fmt.Fprintf(os.Stderr, "dcpid: serving on http://%s\n", lis.Addr())
		sigCh = make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	}
	stopped := false
	interrupted := func() bool {
		if stopped || sigCh == nil {
			return stopped
		}
		select {
		case <-sigCh:
			stopped = true
		default:
		}
		return stopped
	}

	var (
		r            *dcpi.Result
		wallTotal    int64
		samplesTotal uint64
	)
	for i := 0; i < *epochs; i++ {
		runCfg := cfg
		runCfg.Seed = *seed + uint64(i)
		rr, err := dcpi.Run(runCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpid: %v\n", err)
			exit(1)
		}
		r = rr
		wallTotal += rr.Wall
		samplesTotal += rr.DriverStats.Samples
		s := expo.StatsSnapshot{
			Machine:      *machine,
			Workload:     *wl,
			Epoch:        rr.DB.Epoch(),
			EpochsDone:   i + 1,
			Running:      i+1 < *epochs,
			WallCycles:   wallTotal,
			Driver:       rr.DriverStats,
			Daemon:       rr.DaemonStats,
			LossRate:     rr.DriverStats.LossRate(),
			SamplesTotal: samplesTotal,
		}
		snap.Store(&s)
		if *epochs > 1 {
			fmt.Printf("dcpid: epoch %d/%d sealed (%d samples, %d cycles)\n",
				i+1, *epochs, rr.DriverStats.Samples, rr.Wall)
		}
		if i < *epochs-1 {
			if interrupted() {
				fmt.Fprintln(os.Stderr, "dcpid: interrupted; stopping after sealed epoch")
				break
			}
			if err := rr.DB.NewEpoch(); err != nil {
				fmt.Fprintf(os.Stderr, "dcpid: %v\n", err)
				exit(1)
			}
		}
	}

	st := r.Machine.Stats()
	ds := r.Driver.TotalStats()
	dm := r.Daemon.Stats()
	fmt.Printf("dcpid: %s finished in %d cycles (%d instructions)\n", *wl, r.Wall, st.Instructions)
	fmt.Printf("  samples       %d (%s)\n", ds.Samples, *mode)
	fmt.Printf("  hash table    %.1f%% miss, %d evictions, avg handler %.0f cycles\n",
		100*ds.MissRate(), ds.Evictions, ds.AvgCost())
	fmt.Printf("  daemon        %d entries, %.2f%% unknown, %.1f cycles/sample\n",
		dm.Entries, 100*dm.UnknownRate(), dm.CostPerSample())
	if disk, err := r.DB.DiskUsage(); err == nil {
		fmt.Printf("  database      %s (epoch %d, %d bytes)\n", *dbDir, r.DB.Epoch(), disk)
	}
	// Loss and fault reporting only appears when there is something to
	// report, keeping the fault-free summary block byte-identical to
	// earlier releases.
	if ds.Lost > 0 || !cfg.Fault.Empty() {
		fmt.Printf("  loss          %d samples lost (%.4f%% of recorded), %d deliveries deferred\n",
			ds.Lost, 100*ds.LossRate(), ds.Deferred)
	}
	if !cfg.Fault.Empty() {
		// Sample conservation: everything the driver recorded is either in
		// the merged profiles or counted in a loss bucket. Per-process
		// profiles duplicate aggregate samples, so only aggregates count.
		// (Assumes a fresh -db directory; a reused epoch carries prior
		// samples that inflate the merged side.)
		var merged uint64
		for _, p := range r.Profiles() {
			if !strings.Contains(p.ImagePath, "#") {
				merged += p.Total()
			}
		}
		verdict := "ok"
		if ds.Samples != merged+ds.Lost+dm.CrashDropped {
			verdict = "VIOLATED"
		}
		fmt.Printf("  faults        plan %q: %d crashes, %d restarts, %d samples dropped by crashes\n",
			cfg.Fault, dm.Crashes, dm.Restarts, dm.CrashDropped)
		fmt.Printf("  conservation  recorded %d = merged %d + lost %d + crash-dropped %d: %s\n",
			ds.Samples, merged, ds.Lost, dm.CrashDropped, verdict)
	}
	if *verbose {
		// Verbose diagnostics go to stderr so the summary block on stdout
		// stays machine-parseable.
		for cpu := 0; cpu < r.Driver.NumCPUs(); cpu++ {
			fmt.Fprintf(os.Stderr, "  cpu%d: %s\n", cpu, r.Driver.Stats(cpu))
		}
	}
	if *statsOut != "" {
		obs.PublishRuntimeMemStats(cfg.Obs.Registry)
		if err := cfg.Obs.Registry.WriteFile(*statsOut); err != nil {
			fmt.Fprintf(os.Stderr, "dcpid: writing %s: %v\n", *statsOut, err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "dcpid: wrote metrics to %s\n", *statsOut)
	}
	if *traceOut != "" {
		if err := cfg.Obs.Tracer.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "dcpid: writing %s: %v\n", *traceOut, err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "dcpid: wrote %d trace events to %s (open in ui.perfetto.dev)\n",
			cfg.Obs.Tracer.Len(), *traceOut)
	}
	if srv != nil {
		// Every sealed epoch is already fsynced (atomicio's write-meta-last
		// protocol), so shutdown only has to stop accepting requests and
		// let in-flight scrapes finish.
		final := *snap.Load()
		final.Running = false
		snap.Store(&final)
		if !interrupted() {
			fmt.Fprintln(os.Stderr, "dcpid: runs complete; serving until interrupted")
			<-sigCh
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpid: shutdown: %v\n", err)
			exit(1)
		}
		fmt.Fprintln(os.Stderr, "dcpid: shutdown complete")
	}
	exit(0)
}
