// Command dcpitopixie translates profile data into pixie-style basic-block
// execution counts — the paper's §3 mentions this exact converter, which
// lets profile-driven optimizers built for instrumentation-based counts
// consume DCPI's statistically estimated ones instead.
//
// Output: one line per basic block, "imagePath procName blockStartOffset
// estimatedExecutions confidence".
//
// Usage:
//
//	dcpitopixie -db ./dcpidb [-workload x11perf]
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpi/internal/alpha"
	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

func main() {
	var (
		dbDir = flag.String("db", "dcpidb", "profile database directory")
		wl    = flag.String("workload", "", "workload name (defaults to database metadata)")
	)
	flag.Parse()

	view, err := dcpi.OpenView(*dbDir, *wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcpitopixie: %v\n", err)
		os.Exit(1)
	}
	r := view.Result()

	for _, prof := range r.Profiles() {
		if prof.Event != sim.EvCycles || prof.ImagePath == "unknown" {
			continue
		}
		im, ok := r.Loader.ImageByPath(prof.ImagePath)
		if !ok {
			continue
		}
		for _, sym := range im.Symbols {
			var procSamples uint64
			for off, c := range prof.Counts {
				if off >= sym.Offset && off < sym.Offset+sym.Size {
					procSamples += c
				}
			}
			if procSamples == 0 {
				continue
			}
			pa, err := view.AnalyzeOffline(prof.ImagePath, sym.Name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcpitopixie: %s/%s: %v\n", prof.ImagePath, sym.Name, err)
				os.Exit(1)
			}
			for bi, b := range pa.Graph.Blocks {
				off := sym.Offset + uint64(b.Start)*alpha.InstBytes
				conf := pa.ClassConf[pa.Graph.BlockClass[bi]]
				fmt.Printf("%s %s %#x %.0f %s\n",
					prof.ImagePath, sym.Name, off, pa.BlockFreq[bi]*pa.Period, conf)
			}
		}
	}
}
