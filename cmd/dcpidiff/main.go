// Command dcpidiff highlights the differences between two sets of profiles
// for the same program — one of the auxiliary analysis tools the paper's §3
// describes. Procedures are sorted by the magnitude of their share change.
//
// Usage:
//
//	dcpidiff [-workload wave5] [-n 15] dbBefore dbAfter
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpi/internal/analysis"
	"dcpi/internal/dcpi"
	"dcpi/internal/sim"
)

func main() {
	var (
		wl = flag.String("workload", "", "workload name (defaults to database metadata)")
		n  = flag.Int("n", 15, "maximum rows")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "dcpidiff: need exactly two profile databases")
		os.Exit(2)
	}

	load := func(dir string) (map[string]uint64, uint64) {
		view, err := dcpi.OpenView(dir, *wl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcpidiff: %s: %v\n", dir, err)
			os.Exit(1)
		}
		r := view.Result()
		return r.ProcSampleMap(), r.TotalSamples(sim.EvCycles)
	}
	before, beforeTotal := load(flag.Arg(0))
	after, afterTotal := load(flag.Arg(1))
	if beforeTotal == 0 || afterTotal == 0 {
		fmt.Fprintln(os.Stderr, "dcpidiff: a database has no cycles samples")
		os.Exit(1)
	}

	// The ranking itself lives in internal/analysis so the fleet top-delta
	// query (dcpicollect) and this tool agree on what "changed most" means.
	rows := analysis.ShareDeltasTotals(before, after, beforeTotal, afterTotal)

	fmt.Printf("Profile comparison: %s (%d samples) vs %s (%d samples)\n\n",
		flag.Arg(0), beforeTotal, flag.Arg(1), afterTotal)
	fmt.Printf("%8s %8s %8s  %s\n", "before", "after", "delta", "procedure")
	for i, r := range rows {
		if *n > 0 && i >= *n {
			break
		}
		fmt.Printf("%7.2f%% %7.2f%% %+7.2f%%  %s\n", r.BeforePct, r.AfterPct, r.Delta(), r.Name)
	}
}
