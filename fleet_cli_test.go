package dcpibench

import (
	"bufio"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestFleetCLI exercises the fleet pipeline end to end the way an
// operator would: dcpid serving its database over -listen, dcpicollect
// scraping it into a time-series store, the query CLI reading it back,
// and SIGINT shutting both binaries down gracefully.
func TestFleetCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet CLI pipeline is slow")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		return out
	}
	dcpid := build("dcpid")
	dcpicollect := build("dcpicollect")

	// dcpid: three sealed epochs, exposition on an ephemeral port, keeps
	// serving after the runs until interrupted.
	dbDir := filepath.Join(bin, "db")
	daemon := exec.Command(dcpid,
		"-workload", "wave5", "-mode", "default", "-db", dbDir,
		"-scale", "0.15", "-period", "2048", "-seed", "1",
		"-epochs", "3", "-exact", "-machine", "m00", "-listen", "127.0.0.1:0")
	stderr, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stdout = nil
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	daemonDone := make(chan error, 1)

	// The serving address is announced on stderr.
	sc := bufio.NewScanner(stderr)
	var baseURL string
	lines := make(chan string, 64)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(30 * time.Second)
	var daemonStderr []string
waitURL:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("dcpid exited before announcing address:\n%s", strings.Join(daemonStderr, "\n"))
			}
			daemonStderr = append(daemonStderr, line)
			if rest, found := strings.CutPrefix(line, "dcpid: serving on "); found {
				baseURL = rest
				break waitURL
			}
		case <-deadline:
			daemon.Process.Kill()
			t.Fatalf("dcpid never announced its address:\n%s", strings.Join(daemonStderr, "\n"))
		}
	}
	go func() {
		for line := range lines {
			daemonStderr = append(daemonStderr, line)
		}
		daemonDone <- daemon.Wait()
	}()

	// Wait for all three epochs to be sealed and visible over HTTP.
	waitSealed := func() {
		for start := time.Now(); time.Since(start) < 60*time.Second; time.Sleep(100 * time.Millisecond) {
			resp, err := http.Get(baseURL + "/epochs")
			if err != nil {
				continue
			}
			body := make([]byte, 1<<16)
			n, _ := resp.Body.Read(body)
			resp.Body.Close()
			if strings.Count(string(body[:n]), `"sealed": true`) >= 3 {
				return
			}
		}
		daemon.Process.Kill()
		t.Fatal("dcpid never sealed 3 epochs")
	}
	waitSealed()

	// Scrape once into a store, then query it back.
	run := func(prog string, args ...string) string {
		cmd := exec.Command(prog, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(prog), args, err, out)
		}
		return string(out)
	}
	storeDir := filepath.Join(bin, "fleetdb")
	out := run(dcpicollect, "-targets", "m00="+baseURL, "-tsdb", storeDir, "-once")
	if !strings.Contains(out, "3 epochs") {
		t.Fatalf("scrape output: %s", out)
	}
	out = run(dcpicollect, "query", "range", "-tsdb", storeDir,
		"-image", "/usr/bin/wave5", "-last", "3")
	if !strings.Contains(out, "epochs 1-3") || strings.Count(out, "\n") < 5 {
		t.Fatalf("range query output: %s", out)
	}
	// -exact runs store instruction counts, so CPI must be real (not "-").
	for _, line := range strings.Split(out, "\n")[2:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.Contains(line, " - ") {
			t.Fatalf("range row missing CPI: %q", line)
		}
	}
	out = run(dcpicollect, "query", "top", "-tsdb", storeDir, "-from", "1", "-to", "3")
	if !strings.Contains(out, "/usr/bin/wave5") {
		t.Fatalf("top query output: %s", out)
	}

	// SIGINT: dcpid must shut down cleanly with exit status 0.
	if err := daemon.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-daemonDone:
		if err != nil {
			t.Fatalf("dcpid exit after SIGINT: %v\n%s", err, strings.Join(daemonStderr, "\n"))
		}
	case <-time.After(30 * time.Second):
		daemon.Process.Kill()
		t.Fatalf("dcpid did not exit on SIGINT:\n%s", strings.Join(daemonStderr, "\n"))
	}
	if !strings.Contains(strings.Join(daemonStderr, "\n"), "shutdown complete") {
		t.Errorf("dcpid stderr missing shutdown message:\n%s", strings.Join(daemonStderr, "\n"))
	}

	// dcpicollect's scrape loop must also die cleanly on SIGINT.
	loop := exec.Command(dcpicollect, "-targets", "m00=http://127.0.0.1:1",
		"-tsdb", filepath.Join(bin, "loopdb"), "-interval", "100ms",
		"-retries", "0", "-timeout", "200ms")
	var loopErr strings.Builder
	loop.Stderr = &loopErr
	if err := loop.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := loop.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	loopDone := make(chan error, 1)
	go func() { loopDone <- loop.Wait() }()
	select {
	case err := <-loopDone:
		if err != nil {
			t.Fatalf("dcpicollect exit after SIGINT: %v\n%s", err, loopErr.String())
		}
	case <-time.After(15 * time.Second):
		loop.Process.Kill()
		t.Fatalf("dcpicollect did not exit on SIGINT:\n%s", loopErr.String())
	}
	if !strings.Contains(loopErr.String(), "shutdown complete") {
		t.Errorf("dcpicollect stderr missing shutdown message:\n%s", loopErr.String())
	}
}
